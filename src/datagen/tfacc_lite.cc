#include "datagen/tfacc_lite.h"

#include <cassert>

#include "common/string_util.h"
#include "datagen/noise.h"
#include "rules/parser.h"

namespace dcer {

namespace {
const char* kMakes[] = {"Ford", "Toyota", "Vauxhall", "BMW", "Audi",
                        "Nissan", "Honda", "Kia"};
const char* kModels[] = {"Fiesta", "Corolla", "Astra", "Golf", "Focus",
                         "Civic", "Qashqai", "Ceed"};
const char* kStations[] = {"Leeds-01", "York-03", "Bath-02", "Hull-07",
                           "Kent-04"};
const char* kDefectCats[] = {"brakes", "lights", "tyres", "steering",
                             "exhaust", "suspension"};
}  // namespace

std::unique_ptr<GenDataset> MakeTfacc(const TfaccOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "tfacc";
  Rng rng(options.seed);
  Noiser noiser(&rng);
  Dataset& d = gd->dataset;

  size_t vehicle =
      d.AddRelation(Schema("Vehicle", {{"vkey", ValueType::kString},
                                       {"make", ValueType::kString},
                                       {"model", ValueType::kString},
                                       {"reg", ValueType::kString},
                                       {"year", ValueType::kInt}}));
  size_t test = d.AddRelation(Schema("Test", {{"tkey", ValueType::kString},
                                              {"vehicle", ValueType::kString},
                                              {"testdate", ValueType::kString},
                                              {"mileage", ValueType::kInt},
                                              {"result", ValueType::kString},
                                              {"station", ValueType::kString}}));
  size_t defect =
      d.AddRelation(Schema("Defect", {{"dkey", ValueType::kString},
                                      {"test", ValueType::kString},
                                      {"category", ValueType::kString},
                                      {"note", ValueType::kString}}));

  uint64_t next_entity = 0;
  std::vector<uint64_t> entity_of;
  auto append = [&](size_t rel, Row row, uint64_t entity) {
    Gid g = d.AppendTuple(rel, std::move(row));
    entity_of.resize(g + 1, GroundTruth::kNoEntity);
    entity_of[g] = entity;
    return g;
  };
  int next_key = 0;
  auto key = [&](const char* prefix) {
    return std::string(prefix) + std::to_string(next_key++);
  };

  const size_t num_vehicles =
      options.scale_factor > 0
          ? static_cast<size_t>(5000 * options.scale_factor) + 2
          : static_cast<size_t>(500 * options.scale) + 2;

  // Worst-case reserves (dup per vehicle, 3 tests each, dup per test, a
  // defect per test): appends never reallocate, grow_events stays 0.
  d.ReserveTuples(vehicle, 2 * num_vehicles);
  d.ReserveTuples(test, 6 * num_vehicles);
  d.ReserveTuples(defect, 6 * num_vehicles);

  for (size_t i = 0; i < num_vehicles; ++i) {
    std::string make = kMakes[rng.Uniform(std::size(kMakes))];
    std::string model = kModels[rng.Uniform(std::size(kModels))];
    std::string reg = StringPrintf("%c%c%02d %c%c%c",
                                   static_cast<char>('A' + rng.Uniform(26)),
                                   static_cast<char>('A' + rng.Uniform(26)),
                                   static_cast<int>(rng.Uniform(70)),
                                   static_cast<char>('A' + rng.Uniform(26)),
                                   static_cast<char>('A' + rng.Uniform(26)),
                                   static_cast<char>('A' + rng.Uniform(26)));
    int64_t year = 1998 + static_cast<int64_t>(rng.Uniform(22));
    uint64_t ve = next_entity++;
    std::string vk = key("v");
    append(vehicle, {Value(vk), Value(make), Value(model), Value(reg),
                     Value(year)},
           ve);
    std::string dup_vk;
    if (rng.Bernoulli(options.dup_rate)) {
      dup_vk = key("v");
      append(vehicle,
             {Value(dup_vk), Value(make),
              Value(noiser.Perturb(model, options.noise * 0.4)),
              Value(noiser.Typo(reg)), Value(year)},
             ve);
    }

    // 1-3 tests per vehicle; tests of a duplicated vehicle may themselves be
    // duplicated against the duplicate vehicle tuple (level-2 chain).
    size_t ntests = 1 + rng.Uniform(3);
    for (size_t t = 0; t < ntests; ++t) {
      std::string date = StringPrintf("20%02d-%02d-%02d",
                                      static_cast<int>(rng.Uniform(20)),
                                      static_cast<int>(rng.Uniform(12) + 1),
                                      static_cast<int>(rng.Uniform(28) + 1));
      int64_t mileage = 5000 + static_cast<int64_t>(rng.Uniform(150000));
      std::string result = rng.Bernoulli(0.7) ? "PASS" : "FAIL";
      std::string station = kStations[rng.Uniform(std::size(kStations))];
      std::string tk = key("t");
      uint64_t te = next_entity++;
      append(test, {Value(tk), Value(vk), Value(date), Value(mileage),
                    Value(result), Value(station)},
             te);
      std::string dup_tk;
      if (!dup_vk.empty() && rng.Bernoulli(options.dup_rate)) {
        dup_tk = key("t");
        // Mileage re-read with rounding noise (the numeric ML predicate).
        int64_t mileage2 = mileage + rng.UniformRange(-40, 40);
        append(test, {Value(dup_tk), Value(dup_vk), Value(date),
                      Value(mileage2), Value(result), Value(station)},
               te);
      }
      // Failed tests record defects; duplicated tests duplicate them too
      // (level-3 chain).
      if (result == "FAIL") {
        std::string cat = kDefectCats[rng.Uniform(std::size(kDefectCats))];
        std::string note = cat + " " + rng.RandomWord(5, 9) + " defect: " +
                           rng.RandomWord(4, 8) + " " + rng.RandomWord(4, 8) +
                           " beyond limit";
        uint64_t de = next_entity++;
        append(defect, {Value(key("d")), Value(tk), Value(cat), Value(note)},
               de);
        if (!dup_tk.empty()) {
          append(defect,
                 {Value(key("d")), Value(dup_tk), Value(cat),
                  Value(noiser.Perturb(note, options.noise))},
                 de);
        }
      }
    }
  }

  gd->truth.Resize(d.num_tuples());
  for (Gid g = 0; g < entity_of.size(); ++g) {
    if (entity_of[g] != GroundTruth::kNoEntity) {
      gd->truth.SetEntity(g, entity_of[g]);
    }
  }

  gd->registry.Register(std::make_unique<EditSimilarityClassifier>("MR", 0.8));
  gd->registry.Register(
      std::make_unique<NumericToleranceClassifier>("MM", 0.01, 0.99));
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("MD", 0.7));

  const char* kRules =
      "rv: Vehicle(v1) ^ Vehicle(v2) ^ MR(v1.reg, v2.reg) ^ "
      "v1.make = v2.make ^ v1.year = v2.year -> v1.id = v2.id\n"
      "rt: Test(t1) ^ Test(t2) ^ Vehicle(v1) ^ Vehicle(v2) ^ "
      "t1.vehicle = v1.vkey ^ t2.vehicle = v2.vkey ^ v1.id = v2.id ^ "
      "t1.testdate = t2.testdate ^ t1.station = t2.station ^ "
      "MM(t1.mileage, t2.mileage) -> t1.id = t2.id\n"
      "rd: Defect(d1) ^ Defect(d2) ^ Test(t1) ^ Test(t2) ^ d1.test = t1.tkey "
      "^ d2.test = t2.tkey ^ t1.id = t2.id ^ d1.category = d2.category ^ "
      "MD(d1.note, d2.note) -> d1.id = d2.id\n";
  Status st = ParseRuleSet(kRules, d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;

  RelationHint vhint;
  vhint.relation = vehicle;
  vhint.compare_attrs = {3};  // registration plate (the discriminative key)
  vhint.block_attr = 2;       // block by model
  vhint.sort_attr = 3;
  gd->hints.push_back(vhint);
  RelationHint thint;
  thint.relation = test;
  thint.compare_attrs = {2, 3, 5};  // testdate, mileage, station
  thint.block_attr = 2;
  thint.sort_attr = 2;
  gd->hints.push_back(thint);
  RelationHint dhint;
  dhint.relation = defect;
  dhint.compare_attrs = {3};  // note text
  dhint.block_attr = 2;       // block by category
  dhint.sort_attr = 3;
  gd->hints.push_back(dhint);
  return gd;
}

}  // namespace dcer
