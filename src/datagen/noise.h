#ifndef DCER_DATAGEN_NOISE_H_
#define DCER_DATAGEN_NOISE_H_

#include <string>

#include "common/rng.h"

namespace dcer {

/// The dirtiness model for generated duplicates (DESIGN.md §4): the edit
/// operations real dirty data exhibits — typos, initials/abbreviations,
/// dropped or swapped tokens, separator reformatting. Severity controls how
/// many operations stack, letting generators create "easy" (near-exact)
/// through "hard" (ML-needed) duplicates.
class Noiser {
 public:
  explicit Noiser(Rng* rng) : rng_(rng) {}

  /// One random character edit (substitute / delete / insert / transpose).
  std::string Typo(const std::string& s);

  /// Abbreviates the first token to its initial: "Ford Smith" -> "F. Smith".
  std::string Abbreviate(const std::string& s);

  /// Drops a random token (no-op for single-token strings).
  std::string DropToken(const std::string& s);

  /// Swaps two adjacent tokens.
  std::string SwapTokens(const std::string& s);

  /// Rewrites separators: spaces <-> dashes, removes punctuation.
  std::string Reformat(const std::string& s);

  /// Applies 1 + floor(severity * 3) random operations.
  std::string Perturb(const std::string& s, double severity);

 private:
  Rng* rng_;
};

}  // namespace dcer

#endif  // DCER_DATAGEN_NOISE_H_
