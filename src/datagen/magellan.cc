#include "datagen/magellan.h"

#include <cassert>

#include "common/string_util.h"
#include "datagen/noise.h"
#include "rules/parser.h"

namespace dcer {

namespace {

const char* kTitleWords[] = {"dark",   "silent", "last",   "first",  "broken",
                             "golden", "hidden", "lost",   "final",  "crimson",
                             "winter", "summer", "night",  "city",   "river",
                             "empire", "garden", "shadow", "storm",  "echo"};
const char* kGenres[] = {"drama", "comedy", "thriller", "sci-fi", "romance",
                         "action"};
const char* kVenues[] = {"SIGMOD", "VLDB", "ICDE", "KDD", "WWW"};

std::string MakeTitle(Rng* rng, size_t words) {
  std::string t;
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) t += " ";
    t += kTitleWords[rng->Uniform(std::size(kTitleWords))];
  }
  return t;
}

std::string MakePerson(Rng* rng) {
  std::string first = rng->RandomWord(4, 7);
  std::string last = rng->RandomWord(5, 8);
  first[0] = static_cast<char>(std::toupper(first[0]));
  last[0] = static_cast<char>(std::toupper(last[0]));
  return first + " " + last;
}

// Shared bookkeeping for the four generators.
struct Builder {
  explicit Builder(uint64_t seed) : rng(seed), noiser(&rng) {}
  Rng rng;
  Noiser noiser;
  uint64_t next_entity = 0;
  int next_key = 0;
  std::vector<uint64_t> entity_of;

  Gid Append(Dataset* d, size_t rel, Row row, uint64_t entity) {
    Gid g = d->AppendTuple(rel, std::move(row));
    entity_of.resize(g + 1, GroundTruth::kNoEntity);
    entity_of[g] = entity;
    return g;
  }
  std::string Key(const char* prefix) {
    return std::string(prefix) + std::to_string(next_key++);
  }
  void FillTruth(GenDataset* gd) {
    gd->truth.Resize(gd->dataset.num_tuples());
    for (Gid g = 0; g < entity_of.size(); ++g) {
      if (entity_of[g] != GroundTruth::kNoEntity) {
        gd->truth.SetEntity(g, entity_of[g]);
      }
    }
  }
};

}  // namespace

std::unique_ptr<GenDataset> MakeImdb(const MagellanOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "imdb";
  Builder b(options.seed);
  Dataset& d = gd->dataset;
  size_t movies =
      d.AddRelation(Schema("Movies", {{"mkey", ValueType::kString},
                                      {"title", ValueType::kString},
                                      {"year", ValueType::kInt},
                                      {"director", ValueType::kString},
                                      {"genre", ValueType::kString}}));
  // Worst case: base + duplicate + sequel hazard per entity.
  d.ReserveTuples(movies, 3 * options.num_entities);
  for (size_t i = 0; i < options.num_entities; ++i) {
    std::string title = MakeTitle(&b.rng, 2 + b.rng.Uniform(3));
    int64_t year = 1960 + static_cast<int64_t>(b.rng.Uniform(60));
    std::string director = MakePerson(&b.rng);
    std::string genre = kGenres[b.rng.Uniform(std::size(kGenres))];
    uint64_t e = b.next_entity++;
    b.Append(&d, movies,
             {Value(b.Key("m")), Value(title), Value(year), Value(director),
              Value(genre)},
             e);
    if (b.rng.Bernoulli(options.dup_rate)) {
      // Half the duplicates perturb the title (needs the ML predicate),
      // half perturb the director (defeats director-key blocking).
      if (b.rng.Bernoulli(0.5)) {
        b.Append(&d, movies,
                 {Value(b.Key("m")),
                  Value(b.noiser.Perturb(title, options.noise)), Value(year),
                  Value(director), Value(genre)},
                 e);
      } else {
        b.Append(&d, movies,
                 {Value(b.Key("m")), Value(title), Value(year),
                  Value(b.noiser.Abbreviate(director)), Value(genre)},
                 e);
      }
    }
    // Precision hazard: a "sequel" two years later shares the director and
    // most of the title but is a different movie.
    if (b.rng.Bernoulli(0.15)) {
      b.Append(&d, movies,
               {Value(b.Key("m")), Value(title + " ii"), Value(year + 2),
                Value(director), Value(genre)},
               b.next_entity++);
    }
  }
  b.FillTruth(gd.get());
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("MT", 0.7));
  Status st = ParseRuleSet(
      "im1: Movies(m1) ^ Movies(m2) ^ m1.year = m2.year ^ "
      "m1.director = m2.director ^ MT(m1.title, m2.title) -> m1.id = m2.id\n"
      "im2: Movies(m1) ^ Movies(m2) ^ m1.title = m2.title ^ "
      "m1.year = m2.year -> m1.id = m2.id\n",
      d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;
  RelationHint hint;
  hint.relation = movies;
  hint.compare_attrs = {1, 2, 3};
  hint.block_attr = 3;  // director
  hint.sort_attr = 1;   // title
  gd->hints.push_back(hint);
  return gd;
}

std::unique_ptr<GenDataset> MakeAcmDblp(const MagellanOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "acm-dblp";
  Builder b(options.seed);
  Dataset& d = gd->dataset;
  auto paper_schema = [](const char* name) {
    return Schema(name, {{"key", ValueType::kString},
                         {"title", ValueType::kString},
                         {"authors", ValueType::kString},
                         {"venue", ValueType::kString},
                         {"year", ValueType::kInt}});
  };
  size_t acm = d.AddRelation(paper_schema("Acm"));
  size_t dblp = d.AddRelation(paper_schema("Dblp"));
  // Worst case: one ACM row per entity; DBLP gets the dup/filler row plus
  // the follow-up-paper hazard.
  d.ReserveTuples(acm, options.num_entities);
  d.ReserveTuples(dblp, 2 * options.num_entities);
  for (size_t i = 0; i < options.num_entities; ++i) {
    std::string title = MakeTitle(&b.rng, 4 + b.rng.Uniform(4));
    std::string authors = MakePerson(&b.rng) + ", " + MakePerson(&b.rng);
    std::string venue = kVenues[b.rng.Uniform(std::size(kVenues))];
    int64_t year = 1995 + static_cast<int64_t>(b.rng.Uniform(25));
    uint64_t e = b.next_entity++;
    b.Append(&d, acm,
             {Value(b.Key("a")), Value(title), Value(authors), Value(venue),
              Value(year)},
             e);
    // dup_rate of papers also appear in DBLP, with reformatted title and
    // abbreviated author list.
    if (b.rng.Bernoulli(options.dup_rate)) {
      b.Append(&d, dblp,
               {Value(b.Key("d")),
                Value(b.noiser.Perturb(title, options.noise)),
                Value(b.noiser.Abbreviate(authors)), Value(venue),
                Value(year)},
               e);
    } else if (b.rng.Bernoulli(0.5)) {
      // DBLP-only paper (unmatched filler on the other side).
      b.Append(&d, dblp,
               {Value(b.Key("d")), Value(MakeTitle(&b.rng, 5)),
                Value(MakePerson(&b.rng)), Value(venue),
                Value(1995 + static_cast<int64_t>(b.rng.Uniform(25)))},
               b.next_entity++);
    }
    // Precision hazard: a *different* paper in the same venue/year whose
    // title shares most words (follow-up work by other authors).
    if (b.rng.Bernoulli(0.15)) {
      b.Append(&d, dblp,
               {Value(b.Key("d")),
                Value(title + " " + kTitleWords[b.rng.Uniform(
                                        std::size(kTitleWords))]),
                Value(MakePerson(&b.rng) + ", " + MakePerson(&b.rng)),
                Value(venue), Value(year)},
               b.next_entity++);
    }
  }
  b.FillTruth(gd.get());
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("MT", 0.72));
  gd->registry.Register(std::make_unique<TokenJaccardClassifier>("MA", 0.25));
  Status st = ParseRuleSet(
      "ad1: Acm(a) ^ Dblp(b) ^ a.year = b.year ^ a.venue = b.venue ^ "
      "MT(a.title, b.title) ^ MA(a.authors, b.authors) -> a.id = b.id\n",
      d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;
  RelationHint hint;
  hint.relation = acm;
  hint.pair_relation = static_cast<int>(dblp);
  hint.compare_attrs = {1, 2, 4};
  hint.block_attr = 4;  // year
  hint.sort_attr = 1;
  gd->hints.push_back(hint);
  return gd;
}

std::unique_ptr<GenDataset> MakeMovie(const MagellanOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "movie";
  Builder b(options.seed);
  Dataset& d = gd->dataset;
  size_t movies = d.AddRelation(Schema("Movies", {{"mkey", ValueType::kString},
                                                  {"title", ValueType::kString},
                                                  {"year", ValueType::kInt}}));
  size_t directors =
      d.AddRelation(Schema("Directors", {{"dkey", ValueType::kString},
                                         {"name", ValueType::kString},
                                         {"byear", ValueType::kInt}}));
  size_t directed =
      d.AddRelation(Schema("DirectedBy", {{"movie", ValueType::kString},
                                          {"director", ValueType::kString}}));
  // Worst case: base + duplicate rows in every relation.
  d.ReserveTuples(movies, 2 * options.num_entities);
  d.ReserveTuples(directors, 2 * options.num_entities);
  d.ReserveTuples(directed, 2 * options.num_entities);
  for (size_t i = 0; i < options.num_entities; ++i) {
    std::string dname = MakePerson(&b.rng);
    int64_t byear = 1930 + static_cast<int64_t>(b.rng.Uniform(60));
    uint64_t de = b.next_entity++;
    std::string dk = b.Key("d");
    b.Append(&d, directors, {Value(dk), Value(dname), Value(byear)}, de);
    std::string dup_dk;
    if (b.rng.Bernoulli(options.dup_rate)) {
      dup_dk = b.Key("d");
      b.Append(&d, directors,
               {Value(dup_dk), Value(b.noiser.Abbreviate(dname)),
                Value(byear)},
               de);
    }
    std::string title = MakeTitle(&b.rng, 2 + b.rng.Uniform(3));
    int64_t year = 1960 + static_cast<int64_t>(b.rng.Uniform(60));
    uint64_t me = b.next_entity++;
    std::string mk = b.Key("m");
    b.Append(&d, movies, {Value(mk), Value(title), Value(year)}, me);
    b.Append(&d, directed, {Value(mk), Value(dk)}, GroundTruth::kNoEntity);
    if (!dup_dk.empty() && b.rng.Bernoulli(0.8)) {
      // The duplicate movie row credits the duplicate director row, so the
      // movie match requires the director match first (collective).
      std::string mk2 = b.Key("m");
      b.Append(&d, movies,
               {Value(mk2), Value(b.noiser.Perturb(title, options.noise)),
                Value(year)},
               me);
      b.Append(&d, directed, {Value(mk2), Value(dup_dk)},
               GroundTruth::kNoEntity);
    }
  }
  b.FillTruth(gd.get());
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("MT", 0.7));
  gd->registry.Register(std::make_unique<EditSimilarityClassifier>("MN", 0.55));
  Status st = ParseRuleSet(
      "mv1: Directors(d1) ^ Directors(d2) ^ d1.byear = d2.byear ^ "
      "MN(d1.name, d2.name) -> d1.id = d2.id\n"
      "mv2: Movies(m1) ^ Movies(m2) ^ DirectedBy(x1) ^ DirectedBy(x2) ^ "
      "Directors(d1) ^ Directors(d2) ^ x1.movie = m1.mkey ^ "
      "x2.movie = m2.mkey ^ x1.director = d1.dkey ^ x2.director = d2.dkey ^ "
      "d1.id = d2.id ^ m1.year = m2.year ^ MT(m1.title, m2.title) -> "
      "m1.id = m2.id\n",
      d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;
  RelationHint mhint;
  mhint.relation = movies;
  mhint.compare_attrs = {1, 2};
  mhint.block_attr = 2;  // year
  mhint.sort_attr = 1;
  gd->hints.push_back(mhint);
  RelationHint dhint;
  dhint.relation = directors;
  dhint.compare_attrs = {1, 2};
  dhint.block_attr = 2;
  dhint.sort_attr = 1;
  gd->hints.push_back(dhint);
  (void)directed;
  return gd;
}

std::unique_ptr<GenDataset> MakeSongs(const MagellanOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "songs";
  Builder b(options.seed);
  Dataset& d = gd->dataset;
  size_t songs = d.AddRelation(Schema("Songs", {{"skey", ValueType::kString},
                                                {"title", ValueType::kString},
                                                {"artist", ValueType::kString},
                                                {"album", ValueType::kString},
                                                {"year", ValueType::kInt},
                                                {"duration", ValueType::kInt}}));
  // Worst case: base + re-release + cover hazard per entity.
  d.ReserveTuples(songs, 3 * options.num_entities);
  for (size_t i = 0; i < options.num_entities; ++i) {
    std::string title = MakeTitle(&b.rng, 2 + b.rng.Uniform(3));
    std::string artist = MakePerson(&b.rng);
    std::string album = MakeTitle(&b.rng, 2);
    int64_t year = 1970 + static_cast<int64_t>(b.rng.Uniform(50));
    int64_t duration = 120 + static_cast<int64_t>(b.rng.Uniform(300));
    uint64_t e = b.next_entity++;
    b.Append(&d, songs,
             {Value(b.Key("s")), Value(title), Value(artist), Value(album),
              Value(year), Value(duration)},
             e);
    if (b.rng.Bernoulli(options.dup_rate)) {
      // Re-released track: either the title is reformatted (ML on titles)
      // or the artist credit is abbreviated (defeats artist-key blocking);
      // duration drifts a second or two.
      if (b.rng.Bernoulli(0.5)) {
        b.Append(&d, songs,
                 {Value(b.Key("s")),
                  Value(b.noiser.Perturb(title, options.noise)), Value(artist),
                  Value(b.rng.Bernoulli(0.5) ? album : MakeTitle(&b.rng, 2)),
                  Value(year), Value(duration + b.rng.UniformRange(-2, 2))},
                 e);
      } else {
        b.Append(&d, songs,
                 {Value(b.Key("s")), Value(title),
                  Value(b.noiser.Abbreviate(artist)), Value(album),
                  Value(year), Value(duration + b.rng.UniformRange(-2, 2))},
                 e);
      }
    }
    // Precision hazard: a cover of the same song by an unrelated artist.
    if (b.rng.Bernoulli(0.15)) {
      b.Append(&d, songs,
               {Value(b.Key("s")), Value(title), Value(MakePerson(&b.rng)),
                Value(MakeTitle(&b.rng, 2)), Value(year),
                Value(duration + b.rng.UniformRange(-10, 10))},
               b.next_entity++);
    }
  }
  b.FillTruth(gd.get());
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("MT", 0.7));
  gd->registry.Register(
      std::make_unique<NumericToleranceClassifier>("MDur", 0.02, 0.99));
  gd->registry.Register(std::make_unique<EditSimilarityClassifier>("MA", 0.6));
  Status st = ParseRuleSet(
      "sg1: Songs(s1) ^ Songs(s2) ^ s1.artist = s2.artist ^ "
      "s1.year = s2.year ^ MT(s1.title, s2.title) ^ "
      "MDur(s1.duration, s2.duration) -> s1.id = s2.id\n"
      "sg2: Songs(s1) ^ Songs(s2) ^ s1.title = s2.title ^ "
      "s1.year = s2.year ^ MA(s1.artist, s2.artist) ^ "
      "MDur(s1.duration, s2.duration) -> s1.id = s2.id\n",
      d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;
  RelationHint hint;
  hint.relation = songs;
  hint.compare_attrs = {1, 2, 3, 5};
  hint.block_attr = 2;  // artist
  hint.sort_attr = 1;
  gd->hints.push_back(hint);
  return gd;
}

}  // namespace dcer
