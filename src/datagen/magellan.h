#ifndef DCER_DATAGEN_MAGELLAN_H_
#define DCER_DATAGEN_MAGELLAN_H_

#include "datagen/gen_dataset.h"

namespace dcer {

/// Generators for the Magellan-style benchmark analogues of Table V
/// (DESIGN.md §4 documents the substitution): same schema shapes and
/// matching difficulties as IMDB, ACM-DBLP, Movie and Songs, with entity
/// ground truth and per-dataset rule sets.
struct MagellanOptions {
  size_t num_entities = 400;
  double dup_rate = 0.4;
  double noise = 0.3;
  uint64_t seed = 42;
};

/// Single-table movie records; duplicates have noisy titles (ML needed)
/// with matching year/director.
std::unique_ptr<GenDataset> MakeImdb(const MagellanOptions& options);

/// Two-source citation matching (cross-relation ER): the same paper appears
/// in both sources with different formatting.
std::unique_ptr<GenDataset> MakeAcmDblp(const MagellanOptions& options);

/// Three relations (movies, directors, directed-by): movie matches need the
/// director match first — collective ER.
std::unique_ptr<GenDataset> MakeMovie(const MagellanOptions& options);

/// Songs with titles/artists/albums and durations; duration agreement uses
/// a numeric-tolerance ML predicate.
std::unique_ptr<GenDataset> MakeSongs(const MagellanOptions& options);

}  // namespace dcer

#endif  // DCER_DATAGEN_MAGELLAN_H_
