#include "datagen/ecommerce.h"

#include <cassert>

#include "common/string_util.h"
#include "datagen/noise.h"
#include "rules/parser.h"

namespace dcer {

namespace {

const char* kFirstNames[] = {"Ford",  "Tony",  "Alice", "Maria", "John",
                             "Wei",   "Priya", "Carlos", "Anna",  "Yuki",
                             "Omar",  "Lena",  "Igor",  "Sara",  "Paul"};
const char* kLastNames[] = {"Smith",  "Brown",  "Garcia", "Chen",  "Patel",
                            "Müller", "Rossi",  "Kim",    "Novak", "Silva",
                            "Dubois", "Ivanov", "Sato",   "Okafor", "Haug"};
const char* kStreets[] = {"1st Ave", "9 Ave", "Main St", "Oak Rd", "Elm St",
                          "Pine Blvd", "Lake Dr", "Hill Way"};
const char* kCities[] = {"LA", "NY", "SF", "Austin", "Boston", "Seattle"};
const char* kBrands[] = {"ThinkPad", "MacBook", "Aspire", "Pavilion",
                         "ZenBook", "Inspiron", "Gram", "Swift"};
const char* kSpecs[] = {"8GB RAM",  "16GB RAM", "512GB SSD", "256GB SSD",
                        "14-Inch",  "13-inch",  "Backlit Keyboard",
                        "7th Gen",  "OLED",     "Touchscreen"};
const char* kPrefs[] = {"clothing", "makeup", "sports", "electronics",
                        "dress", "books", "garden"};

std::string MakePhone(Rng* rng) {
  return StringPrintf("(%03d) %03d-%04d",
                      static_cast<int>(rng->Uniform(900) + 100),
                      static_cast<int>(rng->Uniform(900) + 100),
                      static_cast<int>(rng->Uniform(10000)));
}

std::string MakeIp(Rng* rng) {
  return StringPrintf("%d.%d.%d.%d", static_cast<int>(rng->Uniform(224) + 1),
                      static_cast<int>(rng->Uniform(256)),
                      static_cast<int>(rng->Uniform(256)),
                      static_cast<int>(rng->Uniform(256)));
}

std::string MakeDesc(Rng* rng, const std::string& brand) {
  // Distinct model token + serial word keep unrelated products apart in
  // n-gram space even within a brand.
  std::string desc = brand + " " + rng->RandomWord(5, 8) + " X" +
                     std::to_string(rng->Uniform(900) + 100);
  size_t nspecs = 2 + rng->Uniform(2);
  for (size_t i = 0; i < nspecs; ++i) {
    desc += ", ";
    desc += kSpecs[rng->Uniform(std::size(kSpecs))];
  }
  desc += ", sku " + rng->RandomWord(6, 9);
  return desc;
}

}  // namespace

std::unique_ptr<GenDataset> MakeEcommerce(const EcommerceOptions& options) {
  auto gd = std::make_unique<GenDataset>();
  gd->name = "ecommerce";
  Rng rng(options.seed);
  Noiser noiser(&rng);
  Dataset& d = gd->dataset;

  size_t customers =
      d.AddRelation(Schema("Customers", {{"cno", ValueType::kString},
                                         {"name", ValueType::kString},
                                         {"phone", ValueType::kString},
                                         {"addr", ValueType::kString},
                                         {"pref", ValueType::kString}}));
  size_t shops = d.AddRelation(Schema("Shops", {{"sno", ValueType::kString},
                                                {"sname", ValueType::kString},
                                                {"owner", ValueType::kString},
                                                {"email", ValueType::kString},
                                                {"loc", ValueType::kString}}));
  size_t products =
      d.AddRelation(Schema("Products", {{"pno", ValueType::kString},
                                        {"pname", ValueType::kString},
                                        {"price", ValueType::kInt},
                                        {"desc", ValueType::kString}}));
  size_t orders = d.AddRelation(Schema("Orders", {{"ono", ValueType::kString},
                                                  {"buyer", ValueType::kString},
                                                  {"seller", ValueType::kString},
                                                  {"item", ValueType::kString},
                                                  {"IP", ValueType::kString}}));

  uint64_t next_entity = 0;
  std::vector<uint64_t> entity_of;  // parallel to gids
  auto append = [&](size_t rel, Row row, uint64_t entity) {
    Gid g = d.AppendTuple(rel, std::move(row));
    entity_of.resize(g + 1, GroundTruth::kNoEntity);
    entity_of[g] = entity;
    return g;
  };
  int next_key = 0;
  auto key = [&](const char* prefix) {
    return std::string(prefix) + std::to_string(next_key++);
  };

  // Worst-case reserves (every customer takes the deep tier: 4 customer
  // tuples, 2 products, 3 shops, 3 orders) plus the hazard and filler loops,
  // so appends never reallocate a column (grow_events stays 0).
  const size_t n = options.num_customers;
  d.ReserveTuples(customers, 4 * n + 2 * (n / 10));
  d.ReserveTuples(products, 2 * n + n / 2);
  d.ReserveTuples(shops, 3 * n);
  d.ReserveTuples(orders, 3 * n);

  auto make_name = [&] {
    return std::string(kFirstNames[rng.Uniform(std::size(kFirstNames))]) +
           " " + kLastNames[rng.Uniform(std::size(kLastNames))];
  };
  auto make_addr = [&] {
    return std::string(kStreets[rng.Uniform(std::size(kStreets))]) + ", " +
           kCities[rng.Uniform(std::size(kCities))];
  };

  for (size_t i = 0; i < options.num_customers; ++i) {
    std::string name = make_name();
    std::string phone = MakePhone(&rng);
    std::string addr = make_addr();
    std::string pref = kPrefs[rng.Uniform(std::size(kPrefs))];
    std::string cno = key("c");
    uint64_t entity = next_entity++;
    Gid base = append(customers,
                      {Value(cno), Value(name), Value(phone), Value(addr),
                       Value(pref)},
                      entity);
    (void)base;

    if (!rng.Bernoulli(options.dup_rate)) continue;
    double which = rng.NextDouble();
    std::string dup_cno = key("c");
    if (which < options.deep_fraction) {
      // Deep tier: different phone, same address, perturbed name. Only rule
      // φ4 (orders from the same IP for the same matched product/shop) can
      // certify this duplicate.
      std::string dup_name = noiser.Perturb(name, options.noise * 0.5);
      append(customers,
             {Value(dup_cno), Value(dup_name), Value(MakePhone(&rng)),
              Value(addr), Value(pref)},
             entity);

      // Build the certifying chain: a duplicated product, a duplicated shop
      // (whose two owners share a phone), and two same-IP orders.
      std::string brand = kBrands[rng.Uniform(std::size(kBrands))];
      std::string desc = MakeDesc(&rng, brand);
      int64_t price = 300 + static_cast<int64_t>(rng.Uniform(2000));
      uint64_t pe = next_entity++;
      std::string p1 = key("p");
      std::string p2 = key("p");
      append(products, {Value(p1), Value(brand), Value(price), Value(desc)},
             pe);
      append(products,
             {Value(p2), Value(brand), Value(price - 50),
              Value(noiser.Perturb(desc, options.noise))},
             pe);

      uint64_t oe = next_entity++;  // shop-owner customer entity
      std::string owner_phone = MakePhone(&rng);
      std::string owner_name = make_name();
      std::string oc1 = key("c");
      std::string oc2 = key("c");
      append(customers,
             {Value(oc1), Value(owner_name), Value(owner_phone),
              Value(make_addr()), Value(kPrefs[rng.Uniform(std::size(kPrefs))])},
             oe);
      append(customers,
             {Value(oc2), Value(noiser.Abbreviate(owner_name)),
              Value(owner_phone), Value::Null(),
              Value(kPrefs[rng.Uniform(std::size(kPrefs))])},
             oe);

      uint64_t se = next_entity++;
      std::string email = ToLower(owner_name.substr(0, 3)) +
                          std::to_string(rng.Uniform(100)) + "@shop.com";
      std::string sname = owner_name + "'s Store";
      std::string s1 = key("s");
      std::string s2 = key("s");
      append(shops,
             {Value(s1), Value(sname), Value(oc1), Value(email),
              Value(make_addr())},
             se);
      append(shops,
             {Value(s2), Value(noiser.Perturb(sname, options.noise * 0.4)),
              Value(oc2), Value(email), Value::Null()},
             se);

      std::string ip = MakeIp(&rng);
      append(orders,
             {Value(key("o")), Value(cno), Value(s1), Value(p1), Value(ip)},
             GroundTruth::kNoEntity);
      append(orders,
             {Value(key("o")), Value(dup_cno), Value(s2), Value(p2),
              Value(ip)},
             GroundTruth::kNoEntity);

      // Half of the deep duplicates are part of a mutual-purchase fraud
      // ring (Example 1): the duplicated customer owns a shop of their own,
      // and the owner of the s1/s2 pair buys from it — so after ER the two
      // shops provably buy the same product from each other.
      if (rng.Bernoulli(0.5)) {
        std::string cshop = key("s");
        append(shops,
               {Value(cshop), Value(name + "'s Shop"), Value(cno),
                Value(ToLower(name.substr(0, 3)) +
                      std::to_string(rng.Uniform(100)) + "@shop.com"),
                Value(addr)},
               next_entity++);
        append(orders,
               {Value(key("o")), Value(oc2), Value(cshop), Value(p1),
                Value(MakeIp(&rng))},
               GroundTruth::kNoEntity);
      }
    } else if (which < options.deep_fraction + options.ml_fraction) {
      // ML tier: same phone, perturbed name, address dropped.
      append(customers,
             {Value(dup_cno), Value(noiser.Perturb(name, options.noise)),
              Value(phone), Value::Null(), Value(pref)},
             entity);
    } else {
      // Easy tier: exact duplicate.
      append(customers,
             {Value(dup_cno), Value(name), Value(phone), Value(addr),
              Value(pref)},
             entity);
    }
  }

  // Precision hazards: customers sharing an address but denoting different
  // people (names and phones unrelated).
  for (size_t i = 0; i < options.num_customers / 10; ++i) {
    std::string addr = make_addr();
    for (int k = 0; k < 2; ++k) {
      append(customers,
             {Value(key("c")), Value(make_name()), Value(MakePhone(&rng)),
              Value(addr), Value(kPrefs[rng.Uniform(std::size(kPrefs))])},
             next_entity++);
    }
  }
  // Unique filler products and orders.
  for (size_t i = 0; i < options.num_customers / 2; ++i) {
    std::string brand = kBrands[rng.Uniform(std::size(kBrands))];
    append(products,
           {Value(key("p")), Value(brand),
            Value(static_cast<int64_t>(300 + rng.Uniform(2000))),
            Value(MakeDesc(&rng, brand))},
           next_entity++);
  }

  gd->truth.Resize(d.num_tuples());
  for (Gid g = 0; g < entity_of.size(); ++g) {
    if (entity_of[g] != GroundTruth::kNoEntity) {
      gd->truth.SetEntity(g, entity_of[g]);
    }
  }

  // Classifiers (the ecommerce analogues of M1-M4 in the paper).
  gd->registry.Register(std::make_unique<EmbeddingCosineClassifier>("M1", 0.80));
  gd->registry.Register(std::make_unique<EditSimilarityClassifier>("M2", 0.55));
  gd->registry.Register(std::make_unique<EditSimilarityClassifier>("M3", 0.55));
  gd->registry.Register(std::make_unique<TokenJaccardClassifier>("M4", 0.30));

  const char* kRules =
      "phi1: Customers(tc) ^ Customers(tc2) ^ tc.name = tc2.name ^ "
      "tc.phone = tc2.phone ^ tc.addr = tc2.addr -> tc.id = tc2.id\n"
      "phi1b: Customers(tc) ^ Customers(tc2) ^ tc.phone = tc2.phone ^ "
      "M3(tc.name, tc2.name) -> tc.id = tc2.id\n"
      "phi2: Products(tp) ^ Products(tp2) ^ tp.pname = tp2.pname ^ "
      "M1(tp.desc, tp2.desc) -> tp.id = tp2.id\n"
      "phi3: Customers(tc) ^ Customers(tc2) ^ Shops(ts) ^ Shops(ts2) ^ "
      "M2(ts.sname, ts2.sname) ^ ts.email = ts2.email ^ ts.owner = tc.cno ^ "
      "ts2.owner = tc2.cno ^ tc.phone = tc2.phone -> ts.id = ts2.id\n"
      "phi4: Customers(tc) ^ Customers(tc2) ^ Orders(to) ^ Orders(to2) ^ "
      "Products(tp) ^ Products(tp2) ^ Shops(ts) ^ Shops(ts2) ^ "
      "tc.cno = to.buyer ^ tc2.cno = to2.buyer ^ to.item = tp.pno ^ "
      "to2.item = tp2.pno ^ to.seller = ts.sno ^ to2.seller = ts2.sno ^ "
      "M3(tc.name, tc2.name) ^ tc.addr = tc2.addr ^ to.IP = to2.IP ^ "
      "tp.id = tp2.id ^ ts.id = ts2.id -> tc.id = tc2.id\n"
      "phi5: Customers(tc) ^ Customers(tc2) ^ Orders(to) ^ Orders(to2) ^ "
      "tc.cno = to.buyer ^ tc2.cno = to2.buyer ^ to.item = to2.item "
      "-> M4(tc.pref, tc2.pref)\n"
      "phi6: Shops(ts) ^ Shops(ts2) ^ Customers(tc) ^ Customers(tc2) ^ "
      "ts.owner = tc.cno ^ ts2.owner = tc2.cno ^ ts.id = ts2.id "
      "-> tc.id = tc2.id\n";
  Status st = ParseRuleSet(kRules, d, gd->registry, &gd->rules);
  assert(st.ok());
  (void)st;

  RelationHint hint;
  hint.relation = customers;
  hint.compare_attrs = {1, 2, 3};  // name, phone, addr
  hint.block_attr = 2;             // phone
  hint.sort_attr = 1;              // name
  gd->hints.push_back(hint);
  RelationHint phint;
  phint.relation = products;
  phint.compare_attrs = {3};  // desc is the discriminative attribute
  phint.block_attr = 1;
  phint.sort_attr = 3;
  gd->hints.push_back(phint);
  RelationHint shint;
  shint.relation = shops;
  shint.compare_attrs = {1};  // sname (email is the blocking key)
  shint.block_attr = 3;
  shint.sort_attr = 1;
  gd->hints.push_back(shint);
  (void)orders;
  return gd;
}

}  // namespace dcer
