#ifndef DCER_DATAGEN_TFACC_LITE_H_
#define DCER_DATAGEN_TFACC_LITE_H_

#include "datagen/gen_dataset.h"

namespace dcer {

/// MOT-style vehicle-test workload standing in for the paper's TFACC
/// dataset (the real one is 480M tuples of UK Ministry of Transport data):
/// vehicles, their periodic tests, and recorded defects. Duplicate chains
/// are three levels deep: vehicle registrations with typos (level 1), test
/// records of matched vehicles (level 2, same date/station, close mileage),
/// and defects of matched tests (level 3).
struct TfaccOptions {
  double scale = 1.0;     // ~4k tuples at 1.0
  /// Scale factor; > 0 overrides `scale`. SF 1 drives 5,000 vehicles
  /// (~25k tuples with tests and defects) — about 1/20,000 of the real
  /// 480M-tuple TFACC, matching the lite divisor used by TpchOptions.
  double scale_factor = 0;
  double dup_rate = 0.3;  // the Dup knob
  double noise = 0.3;
  uint64_t seed = 42;
};

std::unique_ptr<GenDataset> MakeTfacc(const TfaccOptions& options);

}  // namespace dcer

#endif  // DCER_DATAGEN_TFACC_LITE_H_
