#ifndef DCER_DATAGEN_PAPER_EXAMPLE_H_
#define DCER_DATAGEN_PAPER_EXAMPLE_H_

#include <memory>

#include "ml/registry.h"
#include "rules/rule.h"

namespace dcer {

/// The running example of the paper (Example 1, Tables I-IV): the
/// e-commerce dataset with customers/shops/products/orders tuples t1..t18,
/// classifiers M1-M4, and the MRLs φ1-φ5 of Example 2. Chasing it must
/// deduce exactly the matches of Example 3:
///   {t1,t2,t3}, {t4,t5}, {t9,t10}, {t12,t13}
/// plus the validated M4 predictions. Used by tests and the quickstart.
struct PaperExample {
  Dataset dataset;
  MlRegistry registry;
  RuleSet rules;  // φ1..φ5 in order, plus φ6 (see paper_example.cc)
  Gid t[19];      // t[1]..t[18] follow the paper's tuple numbering
};

std::unique_ptr<PaperExample> MakePaperExample();

}  // namespace dcer

#endif  // DCER_DATAGEN_PAPER_EXAMPLE_H_
