#include "datagen/noise.h"

#include "common/string_util.h"

namespace dcer {

std::string Noiser::Typo(const std::string& s) {
  if (s.empty()) return s;
  std::string out = s;
  size_t pos = rng_->Uniform(out.size());
  switch (rng_->Uniform(4)) {
    case 0:  // substitute
      out[pos] = static_cast<char>('a' + rng_->Uniform(26));
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, static_cast<char>('a' + rng_->Uniform(26)));
      break;
    default:  // transpose
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

std::string Noiser::Abbreviate(const std::string& s) {
  std::vector<std::string> tokens = SplitWhitespace(s);
  if (tokens.empty() || tokens[0].size() < 2) return s;
  tokens[0] = std::string(1, tokens[0][0]) + ".";
  return Join(tokens, " ");
}

std::string Noiser::DropToken(const std::string& s) {
  std::vector<std::string> tokens = SplitWhitespace(s);
  if (tokens.size() < 2) return s;
  tokens.erase(tokens.begin() + rng_->Uniform(tokens.size()));
  return Join(tokens, " ");
}

std::string Noiser::SwapTokens(const std::string& s) {
  std::vector<std::string> tokens = SplitWhitespace(s);
  if (tokens.size() < 2) return s;
  size_t i = rng_->Uniform(tokens.size() - 1);
  std::swap(tokens[i], tokens[i + 1]);
  return Join(tokens, " ");
}

std::string Noiser::Reformat(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == ' ' && rng_->Bernoulli(0.5)) {
      out += '-';
    } else if ((c == ',' || c == '.') && rng_->Bernoulli(0.5)) {
      continue;
    } else {
      out += c;
    }
  }
  return out;
}

std::string Noiser::Perturb(const std::string& s, double severity) {
  std::string out = s;
  size_t ops = 1 + static_cast<size_t>(severity * 3);
  for (size_t i = 0; i < ops; ++i) {
    switch (rng_->Uniform(5)) {
      case 0:
        out = Typo(out);
        break;
      case 1:
        out = Abbreviate(out);
        break;
      case 2:
        out = DropToken(out);
        break;
      case 3:
        out = SwapTokens(out);
        break;
      default:
        out = Reformat(out);
        break;
    }
  }
  return out;
}

}  // namespace dcer
