#include "datagen/rulesets.h"

#include <cassert>

#include "common/logging.h"
#include "common/string_util.h"
#include "rules/parser.h"

namespace dcer {

namespace {

// A rule template: tuple-variable atoms plus an ordered predicate list
// (connectivity-critical join predicates first, so any prefix of length >=
// min_preds forms a connected, evaluable rule). Each predicate lists the
// variables it needs; a generated rule declares only the atoms its chosen
// predicates touch.
struct Template {
  struct Pred {
    const char* text;
    std::vector<int> vars;  // indices into `atoms`
  };
  std::vector<const char*> atoms;  // "Customer(c1)" etc., by var index
  std::vector<Pred> preds;
  const char* consequence;
  std::vector<int> consequence_vars;
  size_t min_preds;  // shortest valid prefix
};

std::vector<Template> TpchTemplates() {
  std::vector<Template> out;

  // Customers, optionally joined with nations.
  out.push_back(Template{
      {"Customer(c1)", "Customer(c2)", "Nation(n1)", "Nation(n2)"},
      {
          {"c1.cname = c2.cname", {0, 1}},
          {"c1.phone = c2.phone", {0, 1}},
          {"MC(c1.addr, c2.addr)", {0, 1}},
          {"c1.nation = n1.nkey", {0, 2}},
          {"c2.nation = n2.nkey", {1, 3}},
          {"n1.region = n2.region", {2, 3}},
          {"MN(n1.nname, n2.nname)", {2, 3}},
          {"n1.id = n2.id", {2, 3}},
          {"c1.nation = c2.nation", {0, 1}},
      },
      "c1.id = c2.id",
      {0, 1},
      1});

  // Suppliers.
  out.push_back(Template{
      {"Supplier(s1)", "Supplier(s2)", "Nation(n1)", "Nation(n2)"},
      {
          {"s1.phone = s2.phone", {0, 1}},
          {"MS(s1.sname, s2.sname)", {0, 1}},
          {"s1.nation = n1.nkey", {0, 2}},
          {"s2.nation = n2.nkey", {1, 3}},
          {"n1.region = n2.region", {2, 3}},
          {"n1.id = n2.id", {2, 3}},
      },
      "s1.id = s2.id",
      {0, 1},
      1});

  // Parts, optionally via partsupp/supplier.
  out.push_back(Template{
      {"Part(p1)", "Part(p2)", "Partsupp(ps1)", "Partsupp(ps2)",
       "Supplier(s1)", "Supplier(s2)"},
      {
          {"p1.pname = p2.pname", {0, 1}},
          {"p1.brand = p2.brand", {0, 1}},
          {"MP(p1.descr, p2.descr)", {0, 1}},
          {"ps1.partkey = p1.pkey", {0, 2}},
          {"ps2.partkey = p2.pkey", {1, 3}},
          {"ps1.supplycost = ps2.supplycost", {2, 3}},
          {"ps1.suppkey = s1.skey", {2, 4}},
          {"ps2.suppkey = s2.skey", {3, 5}},
          {"s1.id = s2.id", {4, 5}},
      },
      "p1.id = p2.id",
      {0, 1},
      1});

  // Orders, optionally via customers and lineitems.
  out.push_back(Template{
      {"Orders(o1)", "Orders(o2)", "Customer(c1)", "Customer(c2)",
       "Lineitem(l1)", "Lineitem(l2)"},
      {
          {"o1.orderdate = o2.orderdate", {0, 1}},
          {"o1.totalprice = o2.totalprice", {0, 1}},
          {"MO(o1.clerk, o2.clerk)", {0, 1}},
          {"o1.custkey = c1.ckey", {0, 2}},
          {"o2.custkey = c2.ckey", {1, 3}},
          {"c1.id = c2.id", {2, 3}},
          {"o1.okey = l1.orderkey", {0, 4}},
          {"o2.okey = l2.orderkey", {1, 5}},
          {"l1.partkey = l2.partkey", {4, 5}},
      },
      "o1.id = o2.id",
      {0, 1},
      2});

  // Nations.
  out.push_back(Template{
      {"Nation(n1)", "Nation(n2)"},
      {
          {"MN(n1.nname, n2.nname)", {0, 1}},
          {"n1.region = n2.region", {0, 1}},
      },
      "n1.id = n2.id",
      {0, 1},
      1});
  return out;
}

std::string RenderRule(const Template& t, size_t num_preds,
                       const std::string& name) {
  num_preds = std::max(num_preds, t.min_preds);
  num_preds = std::min(num_preds, t.preds.size());
  // Which atoms do the chosen predicates (and consequence) need?
  std::vector<bool> used(t.atoms.size(), false);
  for (int v : t.consequence_vars) used[v] = true;
  for (size_t i = 0; i < num_preds; ++i) {
    for (int v : t.preds[i].vars) used[v] = true;
  }
  std::string out = name + ": ";
  bool first = true;
  for (size_t v = 0; v < t.atoms.size(); ++v) {
    if (!used[v]) continue;
    if (!first) out += " ^ ";
    out += t.atoms[v];
    first = false;
  }
  for (size_t i = 0; i < num_preds; ++i) {
    out += " ^ ";
    out += t.preds[i].text;
  }
  out += " -> ";
  out += t.consequence;
  return out;
}

}  // namespace

namespace {

RuleSet BuildSweep(const GenDataset& gd, const std::vector<Template>& templates,
                   size_t num_rules, size_t avg_preds) {
  RuleSet rules;
  for (size_t i = 0; i < num_rules; ++i) {
    const Template& t = templates[i % templates.size()];
    // Vary the prefix length around avg_preds so the average is close to
    // the requested |φ| while successive rules from the same template still
    // share predicate prefixes (MQO sharing).
    size_t target = avg_preds > 1 ? avg_preds - 1 : 1;  // consequence counts
    size_t len = target + (i / templates.size()) % 2;   // alternate ±1
    std::string text = RenderRule(t, len, StringPrintf("sw%zu", i));
    Rule rule;
    Status st = ParseRule(text, gd.dataset, gd.registry, &rule);
    if (!st.ok()) {
      DCER_LOG(Error) << "sweep rule failed to parse: " << st.ToString();
      continue;
    }
    rules.Add(std::move(rule));
  }
  return rules;
}

std::vector<Template> TfaccTemplates() {
  std::vector<Template> out;
  out.push_back(Template{
      {"Vehicle(v1)", "Vehicle(v2)"},
      {
          {"MR(v1.reg, v2.reg)", {0, 1}},
          {"v1.make = v2.make", {0, 1}},
          {"v1.year = v2.year", {0, 1}},
          {"v1.model = v2.model", {0, 1}},
      },
      "v1.id = v2.id",
      {0, 1},
      2});
  out.push_back(Template{
      {"Test(t1)", "Test(t2)", "Vehicle(v1)", "Vehicle(v2)"},
      {
          {"t1.testdate = t2.testdate", {0, 1}},
          {"t1.station = t2.station", {0, 1}},
          {"MM(t1.mileage, t2.mileage)", {0, 1}},
          {"t1.vehicle = v1.vkey", {0, 2}},
          {"t2.vehicle = v2.vkey", {1, 3}},
          {"v1.id = v2.id", {2, 3}},
          {"t1.result = t2.result", {0, 1}},
      },
      "t1.id = t2.id",
      {0, 1},
      2});
  out.push_back(Template{
      {"Defect(d1)", "Defect(d2)", "Test(t1)", "Test(t2)"},
      {
          {"d1.category = d2.category", {0, 1}},
          {"MD(d1.note, d2.note)", {0, 1}},
          {"d1.test = t1.tkey", {0, 2}},
          {"d2.test = t2.tkey", {1, 3}},
          {"t1.id = t2.id", {2, 3}},
          {"t1.station = t2.station", {2, 3}},
      },
      "d1.id = d2.id",
      {0, 1},
      2});
  return out;
}

}  // namespace

RuleSet MakeTpchSweepRules(const GenDataset& tpch, size_t num_rules,
                           size_t avg_preds) {
  return BuildSweep(tpch, TpchTemplates(), num_rules, avg_preds);
}

RuleSet MakeTfaccSweepRules(const GenDataset& tfacc, size_t num_rules,
                            size_t avg_preds) {
  return BuildSweep(tfacc, TfaccTemplates(), num_rules, avg_preds);
}

}  // namespace dcer
