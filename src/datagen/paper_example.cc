#include "datagen/paper_example.h"

#include <cassert>

#include "rules/parser.h"

namespace dcer {

std::unique_ptr<PaperExample> MakePaperExample() {
  auto ex = std::make_unique<PaperExample>();
  Dataset& d = ex->dataset;

  size_t customers =
      d.AddRelation(Schema("Customers", {{"cno", ValueType::kString},
                                         {"name", ValueType::kString},
                                         {"phone", ValueType::kString},
                                         {"addr", ValueType::kString},
                                         {"pref", ValueType::kString}}));
  size_t shops = d.AddRelation(Schema("Shops", {{"sno", ValueType::kString},
                                                {"sname", ValueType::kString},
                                                {"owner", ValueType::kString},
                                                {"email", ValueType::kString},
                                                {"loc", ValueType::kString}}));
  size_t products =
      d.AddRelation(Schema("Products", {{"pno", ValueType::kString},
                                        {"pname", ValueType::kString},
                                        {"price", ValueType::kInt},
                                        {"desc", ValueType::kString}}));
  size_t orders = d.AddRelation(Schema("Orders", {{"ono", ValueType::kString},
                                                  {"buyer", ValueType::kString},
                                                  {"seller", ValueType::kString},
                                                  {"item", ValueType::kString},
                                                  {"IP", ValueType::kString}}));

  // Exact row counts of Tables I-IV.
  d.ReserveTuples(customers, 5);
  d.ReserveTuples(shops, 5);
  d.ReserveTuples(products, 4);
  d.ReserveTuples(orders, 4);

  auto S = [](const char* s) { return Value(s); };
  auto I = [](int64_t i) { return Value(i); };
  const Value N = Value::Null();

  // Table I: instance D1 of Customers.
  ex->t[1] = d.AppendTuple(customers, {S("c1"), S("Ford Smith"),
                                       S("(213) 243-9856"), S("1st Ave, LA"),
                                       S("clothing, makeup")});
  ex->t[2] = d.AppendTuple(customers, {S("c2"), S("F. Smith"),
                                       S("(213) 333-0001"), S("1st Ave, LA"),
                                       S("clothing")});
  ex->t[3] = d.AppendTuple(customers, {S("c3"), S("F. Smith"),
                                       S("(213) 333-0001"), S("1st Ave, LA"),
                                       S("dress")});
  ex->t[4] = d.AppendTuple(customers, {S("c4"), S("Tony Brown"),
                                       S("(347) 981-3452"), S("9 Ave, NY"),
                                       S("sports")});
  ex->t[5] = d.AppendTuple(customers, {S("c5"), S("T. Brown"),
                                       S("(347) 981-3452"), N, S("sports")});

  // Table II: instance D2 of Shops.
  ex->t[6] = d.AppendTuple(shops, {S("s1"), S("Comp. World"), S("c1"),
                                   S("FSm@g.com"), S("1st Ave, LA")});
  ex->t[7] = d.AppendTuple(shops, {S("s2"), S("Smith's Tech shop"), S("c2"),
                                   S("F_Sm@g.com"), S("1st Ave, LA")});
  ex->t[8] = d.AppendTuple(shops, {S("s3"), S("Lap. store"), S("c3"),
                                   S("jp@youp.com"), S("1st Ave, LA")});
  ex->t[9] = d.AppendTuple(shops, {S("s4"), S("T's Store"), S("c4"),
                                   S("T.Brown@ga.com"), S("9 Ave, NY")});
  ex->t[10] = d.AppendTuple(shops, {S("s5"), S("Tony's Store"), S("c5"),
                                    S("T.Brown@ga.com"), N});

  // Table III: instance D3 of Products.
  ex->t[11] = d.AppendTuple(
      products, {S("p1"), S("Apple MacBook"), I(1000),
                 S("Apple MacBook Air (13-inch, 8GB RAM, 256GB SSD)")});
  ex->t[12] = d.AppendTuple(
      products,
      {S("p2"), S("ThinkPad"), I(2000),
       S("ThinkPad X1 Carbon 7th Gen : 14-Inch, 16GB RAM, 512GB Nvme SSD")});
  ex->t[13] = d.AppendTuple(
      products, {S("p3"), S("ThinkPad"), I(1800),
                 S("ThinkPad X1 Carbon 7th Gen 14\" - 16 GB RAM - 512 GB SSD")});
  ex->t[14] = d.AppendTuple(
      products, {S("p4"), S("Acer Laptop"), I(500),
                 S("Acer Aspire 5 Slim Laptop, 15.6 inches, 4GB DDR4, 128GB "
                   "SSD, Backlit Keyboard")});

  // Table IV: instance D4 of Orders.
  ex->t[15] = d.AppendTuple(
      orders, {S("o1"), S("c4"), S("s2"), S("p2"), S("156.33.14.7")});
  ex->t[16] = d.AppendTuple(
      orders, {S("o2"), S("c3"), S("s4"), S("p2"), S("113.55.126.9")});
  ex->t[17] = d.AppendTuple(
      orders, {S("o3"), S("c1"), S("s5"), S("p3"), S("113.55.126.9")});
  ex->t[18] = d.AppendTuple(
      orders, {S("o4"), S("c1"), S("s4"), S("p2"), S("143.32.11.2")});

  // ML predicates: M1 checks long-text similarity of product descriptions,
  // M2/M3 check short-name similarity, M4 is the preference model whose
  // predictions φ5 validates.
  ex->registry.Register(
      std::make_unique<EmbeddingCosineClassifier>("M1", 0.70));
  ex->registry.Register(std::make_unique<EditSimilarityClassifier>("M2", 0.60));
  ex->registry.Register(std::make_unique<EditSimilarityClassifier>("M3", 0.55));
  ex->registry.Register(std::make_unique<TokenJaccardClassifier>("M4", 0.30));

  // The MRLs of Example 2.
  const char* kRules =
      "phi1: Customers(tc) ^ Customers(tc2) ^ tc.name = tc2.name ^ "
      "tc.phone = tc2.phone ^ tc.addr = tc2.addr -> tc.id = tc2.id\n"

      "phi2: Products(tp) ^ Products(tp2) ^ tp.pname = tp2.pname ^ "
      "M1(tp.desc, tp2.desc) -> tp.id = tp2.id\n"

      "phi3: Customers(tc) ^ Customers(tc2) ^ Shops(ts) ^ Shops(ts2) ^ "
      "M2(ts.sname, ts2.sname) ^ ts.email = ts2.email ^ ts.owner = tc.cno ^ "
      "ts2.owner = tc2.cno ^ tc.phone = tc2.phone -> ts.id = ts2.id\n"

      "phi4: Customers(tc) ^ Customers(tc2) ^ Orders(to) ^ Orders(to2) ^ "
      "Products(tp) ^ Products(tp2) ^ Shops(ts) ^ Shops(ts2) ^ "
      "tc.cno = to.buyer ^ tc2.cno = to2.buyer ^ to.item = tp.pno ^ "
      "to2.item = tp2.pno ^ to.seller = ts.sno ^ to2.seller = ts2.sno ^ "
      "M3(tc.name, tc2.name) ^ tc.addr = tc2.addr ^ to.IP = to2.IP ^ "
      "tp.id = tp2.id ^ ts.id = ts2.id -> tc.id = tc2.id\n"

      "phi5: Customers(tc) ^ Customers(tc2) ^ Orders(to) ^ Orders(to2) ^ "
      "tc.cno = to.buyer ^ tc2.cno = to2.buyer ^ to.item = to2.item "
      "-> M4(tc.pref, tc2.pref)\n"

      // Example 3 of the paper also lists (t4.id, t5.id) in Γ, which φ1-φ5
      // alone cannot derive (c5 has no orders and a NULL address). φ6 is the
      // natural deep rule that closes the gap: if two shop tuples denote the
      // same shop, their owners denote the same customer.
      "phi6: Shops(ts) ^ Shops(ts2) ^ Customers(tc) ^ Customers(tc2) ^ "
      "ts.owner = tc.cno ^ ts2.owner = tc2.cno ^ ts.id = ts2.id "
      "-> tc.id = tc2.id\n";

  Status s = ParseRuleSet(kRules, d, ex->registry, &ex->rules);
  assert(s.ok() && "paper example rules must parse");
  (void)s;
  return ex;
}

}  // namespace dcer
