#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace dcer {

namespace {
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n > 0);
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF sampling via rejection (Devroye). Good enough for workloads.
  double b = std::pow(2.0, s - 1.0);
  for (;;) {
    double u = NextDouble();
    double v = NextDouble();
    double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-9)));
    if (x < 1.0) x = 1.0;
    double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      uint64_t k = static_cast<uint64_t>(x) - 1;
      if (k < n) return k;
    }
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::RandomWord(size_t min_len, size_t max_len) {
  size_t len = min_len + Uniform(max_len - min_len + 1);
  std::string s(len, 'a');
  for (auto& c : s) c = static_cast<char>('a' + Uniform(26));
  return s;
}

Rng Rng::Fork(uint64_t stream_id) {
  return Rng(Next() ^ (stream_id * 0xD1B54A32D192ED03ULL));
}

}  // namespace dcer
