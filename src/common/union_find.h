#ifndef DCER_COMMON_UNION_FIND_H_
#define DCER_COMMON_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcer {

/// Disjoint-set forest with path compression and union by size.
///
/// Backs the equivalence relation E_id of deduced matches (Sec. V-A (3) of
/// the paper): each element is a global tuple id, and two tuples are matched
/// iff they share a root. Class members can be enumerated in O(class size)
/// via an intrusive circular linked list, which IncDeduce uses to compute the
/// delta pair set produced by a merge.
class UnionFind {
 public:
  UnionFind() = default;
  explicit UnionFind(size_t n) { Reset(n); }

  /// Re-initializes to n singleton classes.
  void Reset(size_t n);

  /// Extends the universe to n elements (new elements are singletons);
  /// no-op if already at least that large. Supports incremental ER over
  /// appended tuples.
  void Grow(size_t n);

  size_t size() const { return parent_.size(); }

  /// Root of x's class (with path compression).
  uint32_t Find(uint32_t x) const;

  bool Same(uint32_t a, uint32_t b) const { return Find(a) == Find(b); }

  /// Root of x's class without path compression: performs no writes, so any
  /// number of threads may call it concurrently as long as nobody runs
  /// Union/Find/Reset/Grow. Used by parallel enumeration shards that read a
  /// frozen match context.
  uint32_t FindNoCompress(uint32_t x) const {
    while (parent_[x] != x) x = parent_[x];
    return x;
  }

  bool SameNoCompress(uint32_t a, uint32_t b) const {
    return FindNoCompress(a) == FindNoCompress(b);
  }

  /// Merges the classes of a and b. Returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  /// Number of elements in x's class.
  uint32_t ClassSize(uint32_t x) const { return size_[Find(x)]; }

  /// All members of x's class, including x.
  std::vector<uint32_t> ClassMembers(uint32_t x) const;

  /// Number of classes with >= 2 members.
  size_t NumNonTrivialClasses() const;

  /// Total number of matched (unordered, non-reflexive) pairs implied by the
  /// equivalence closure: sum over classes of |C| choose 2.
  uint64_t NumMatchedPairs() const;

 private:
  mutable std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  // next_[x] links members of a class in a circular list for enumeration.
  std::vector<uint32_t> next_;
};

}  // namespace dcer

#endif  // DCER_COMMON_UNION_FIND_H_
