#ifndef DCER_COMMON_LOGGING_H_
#define DCER_COMMON_LOGGING_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace dcer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so library users and benches are quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects every log line (both DCER_LOG text and DCER_SLOG JSON) to
/// `sink` instead of stderr; pass nullptr to restore stderr. The line is
/// passed without a trailing newline. Used by tests and by embedders that
/// forward into their own logging fabric.
void SetLogSink(std::function<void(const std::string& line)> sink);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

/// Emits one already-rendered line through the sink (newline appended for
/// the stderr default).
void EmitLine(const std::string& line);

/// Stable lowercase level name ("debug" ... "error").
const char* LevelName(LogLevel level);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Token-bucket admission control for one log call site: allows `burst`
/// records immediately and `per_sec` sustained, drops the rest. Dropped
/// records are counted and surfaced as a "suppressed" key on the next
/// admitted record, so the log never silently loses information about load.
/// Thread-safe; the fast path is one mutex on an already-cold branch (the
/// record was above the level threshold).
class LogRateLimiter {
 public:
  explicit LogRateLimiter(double per_sec, double burst = 10.0);

  /// True if this record may be emitted; on admission *suppressed receives
  /// the number of records dropped since the last admitted one.
  bool Admit(uint64_t* suppressed);

 private:
  const double per_sec_;
  const double burst_;
  std::mutex mu_;
  double tokens_;
  uint64_t last_ns_ = 0;
  uint64_t suppressed_ = 0;
};
}  // namespace internal

/// Structured JSON log record, emitted as one line on destruction:
///
///   DCER_SLOG(Warning, "slow_query")
///       .KV("kind", "append").KV("trace_id", TraceIdHex(id))
///       .KV("elapsed_ms", 12.7);
///
/// renders {"ts_ms":...,"level":"warning","event":"slow_query",
/// "src":"daemon.cc:321","kind":"append",...}. Records below the global
/// level threshold cost one branch and build nothing. Keys are emitted in
/// call order; values are JSON-escaped strings, integers, doubles or bools.
class StructuredLog {
 public:
  StructuredLog(LogLevel level, const char* event, const char* file, int line,
                internal::LogRateLimiter* limiter = nullptr);
  ~StructuredLog();

  StructuredLog(const StructuredLog&) = delete;
  StructuredLog& operator=(const StructuredLog&) = delete;

  StructuredLog& KV(const char* key, const std::string& value);
  StructuredLog& KV(const char* key, const char* value);
  StructuredLog& KV(const char* key, uint64_t value);
  StructuredLog& KV(const char* key, int64_t value);
  StructuredLog& KV(const char* key, int value) {
    return KV(key, static_cast<int64_t>(value));
  }
  StructuredLog& KV(const char* key, double value);
  StructuredLog& KV(const char* key, bool value);

 private:
  void Key(const char* key);

  bool enabled_;
  internal::LogRateLimiter* limiter_;
  std::string line_;
};

/// `id` as the 16-hex-digit form shared with the Chrome trace output, so a
/// grep for a trace id hits both the slow-query log and the trace file.
std::string TraceIdHex(uint64_t id);

#define DCER_LOG(level)                                                  \
  ::dcer::internal::LogStream(::dcer::LogLevel::k##level, __FILE__, \
                              __LINE__)

/// Structured record at `level` for `event` (a stable snake_case name).
#define DCER_SLOG(level, event)                                         \
  ::dcer::StructuredLog(::dcer::LogLevel::k##level, event, __FILE__,    \
                        __LINE__)

/// DCER_SLOG with per-call-site rate limiting: at most `per_sec` sustained
/// records per second from this line (burst of 10), dropped records counted
/// into the next admitted record's "suppressed" key.
#define DCER_SLOG_LIMITED(level, event, per_sec)                          \
  ::dcer::StructuredLog(                                                  \
      ::dcer::LogLevel::k##level, event, __FILE__, __LINE__,              \
      []() -> ::dcer::internal::LogRateLimiter* {                         \
        static ::dcer::internal::LogRateLimiter limiter(per_sec);         \
        return &limiter;                                                  \
      }())

}  // namespace dcer

#endif  // DCER_COMMON_LOGGING_H_
