#ifndef DCER_COMMON_LOGGING_H_
#define DCER_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dcer {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so library users and benches are quiet unless they opt in.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define DCER_LOG(level)                                                  \
  ::dcer::internal::LogStream(::dcer::LogLevel::k##level, __FILE__, \
                              __LINE__)

}  // namespace dcer

#endif  // DCER_COMMON_LOGGING_H_
