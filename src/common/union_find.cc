#include "common/union_find.h"

#include <numeric>

namespace dcer {

void UnionFind::Reset(size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0);
  size_.assign(n, 1);
  next_.resize(n);
  std::iota(next_.begin(), next_.end(), 0);
}

void UnionFind::Grow(size_t n) {
  if (n <= parent_.size()) return;
  size_t old = parent_.size();
  parent_.resize(n);
  size_.resize(n, 1);
  next_.resize(n);
  for (size_t i = old; i < n; ++i) {
    parent_[i] = static_cast<uint32_t>(i);
    next_[i] = static_cast<uint32_t>(i);
  }
}

uint32_t UnionFind::Find(uint32_t x) const {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    uint32_t up = parent_[x];
    parent_[x] = root;
    x = up;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  std::swap(next_[ra], next_[rb]);
  return true;
}

std::vector<uint32_t> UnionFind::ClassMembers(uint32_t x) const {
  std::vector<uint32_t> out;
  out.reserve(ClassSize(x));
  uint32_t cur = x;
  do {
    out.push_back(cur);
    cur = next_[cur];
  } while (cur != x);
  return out;
}

size_t UnionFind::NumNonTrivialClasses() const {
  size_t count = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    if (Find(i) == i && size_[i] >= 2) ++count;
  }
  return count;
}

uint64_t UnionFind::NumMatchedPairs() const {
  uint64_t total = 0;
  for (uint32_t i = 0; i < parent_.size(); ++i) {
    if (Find(i) == i) {
      uint64_t s = size_[i];
      total += s * (s - 1) / 2;
    }
  }
  return total;
}

}  // namespace dcer
