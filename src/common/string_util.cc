#include "common/string_util.h"

#include <cstdarg>
#include <cstdint>
#include <cstdio>

#include <algorithm>

namespace dcer {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t EditDistance(std::string_view a, std::string_view b, int bound) {
  if (a.size() > b.size()) std::swap(a, b);
  size_t n = a.size();
  size_t m = b.size();
  if (bound >= 0 && m - n > static_cast<size_t>(bound)) {
    return static_cast<size_t>(bound) + 1;
  }
  if (n == 0) return m;  // the bound check above already vetted m

  if (n <= 64) {
    // Myers' bit-parallel algorithm (1999): one word of vertical-delta
    // bitmasks per column, O(m) words total — no DP matrix, no allocation.
    uint64_t peq[256] = {};
    for (size_t i = 0; i < n; ++i) {
      peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
    }
    uint64_t pv = ~uint64_t{0};
    uint64_t mv = 0;
    size_t score = n;
    const uint64_t high = uint64_t{1} << (n - 1);
    for (size_t j = 0; j < m; ++j) {
      const uint64_t eq = peq[static_cast<unsigned char>(b[j])];
      const uint64_t xv = eq | mv;
      const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
      uint64_t ph = mv | ~(xh | pv);
      uint64_t mh = pv & xh;
      if (ph & high) {
        ++score;
      } else if (mh & high) {
        --score;
      }
      // The final distance can drop by at most 1 per remaining column.
      if (bound >= 0 &&
          score > static_cast<size_t>(bound) + (m - 1 - j)) {
        return static_cast<size_t>(bound) + 1;
      }
      ph = (ph << 1) | 1;
      mh <<= 1;
      pv = mh | ~(xv | ph);
      mv = ph & xv;
    }
    if (bound >= 0 && score > static_cast<size_t>(bound)) {
      return static_cast<size_t>(bound) + 1;
    }
    return score;
  }

  // Long-string fallback: two-row DP with early exit, rows reused across
  // calls so the kernel allocates only when a longer string shows up.
  thread_local std::vector<size_t> prev;
  thread_local std::vector<size_t> cur;
  prev.resize(n + 1);
  cur.resize(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = j;
    size_t row_min = cur[0];
    for (size_t i = 1; i <= n; ++i) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, prev[i - 1] + cost});
      row_min = std::min(row_min, cur[i]);
    }
    if (bound >= 0 && row_min > static_cast<size_t>(bound)) {
      return static_cast<size_t>(bound) + 1;
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int len = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(len > 0 ? static_cast<size_t>(len) : 0, '\0');
  if (len > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace dcer
