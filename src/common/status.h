#ifndef DCER_COMMON_STATUS_H_
#define DCER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace dcer {

/// A RocksDB-style status object returned by fallible operations (parsing,
/// I/O, configuration). Internal invariant violations use DCHECK-style
/// assertions instead; Status is reserved for errors a caller can act on.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad rule".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

}  // namespace dcer

#endif  // DCER_COMMON_STATUS_H_
