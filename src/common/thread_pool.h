#ifndef DCER_COMMON_THREAD_POOL_H_
#define DCER_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dcer {

class TaskGroup;

/// Persistent work-stealing thread pool: the single execution substrate of
/// the repo. Every worker thread owns a Chase–Lev-style deque (the owner
/// pushes and pops LIFO at the bottom; thieves CAS-steal FIFO from the top),
/// so recently spawned tasks run cache-hot on their producer while idle
/// threads drain the oldest — and typically largest — subtrees of a fork.
/// External threads submit through an injection queue and help execute while
/// they wait, so a TaskGroup::Wait never deadlocks even on a single-thread
/// pool. The pool stays alive across supersteps/scopes/calls; creating and
/// joining std::threads per round is exactly the churn this class removes.
///
/// Determinism: the pool executes tasks in a nondeterministic order, so
/// callers that need reproducible output (the chase) split work into a
/// deterministic number of ordered shards, buffer per-shard results, and
/// merge them by shard index afterwards (see ChaseEngine::Deduce).
class ThreadPool {
 public:
  /// Spawns `num_threads` worker threads (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// The process-wide pool, sized max(2, hardware_concurrency) — large
  /// enough to exercise real concurrency even on one-core machines. Created
  /// on first use, joined at process exit.
  static ThreadPool& Global();

  /// Runs body(lo, hi) over [begin, end) split into chunks of at most
  /// `grain` items, in parallel, and blocks until every chunk finished.
  /// grain == 0 picks ~4 chunks per pool thread. The chunk boundaries are a
  /// pure function of (begin, end, grain), so callers can index per-chunk
  /// buffers by lo / grain for deterministic merges. Exceptions thrown by
  /// `body` are rethrown (first one wins).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t lo, size_t hi)>& body);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
  };

  // Chase–Lev work-stealing deque (Le et al., "Correct and Efficient
  // Work-Stealing for Weak Memory Models", PPoPP'13), with the fence-based
  // relaxed accesses strengthened to seq_cst on top_/bottom_: standalone
  // atomic_thread_fences are invisible to ThreadSanitizer and the stronger
  // orderings cost one fence per owner pop — noise at our task granularity.
  // Slots hold raw Task pointers in a growable circular buffer; retired
  // buffers are kept until destruction so racing thieves never touch freed
  // memory.
  class Deque {
   public:
    Deque();
    ~Deque();

    void Push(Task* task);  // owner only
    Task* Pop();            // owner only
    Task* Steal();          // any thread; nullptr on empty or lost race

   private:
    struct Buffer {
      explicit Buffer(size_t capacity)
          : mask(capacity - 1),
            slots(std::make_unique<std::atomic<Task*>[]>(capacity)) {}
      size_t capacity() const { return mask + 1; }
      Task* Get(int64_t i) const {
        return slots[static_cast<size_t>(i) & mask].load(
            std::memory_order_relaxed);
      }
      void Put(int64_t i, Task* t) {
        slots[static_cast<size_t>(i) & mask].store(t,
                                                   std::memory_order_relaxed);
      }
      const size_t mask;
      std::unique_ptr<std::atomic<Task*>[]> slots;
    };

    Buffer* Grow(Buffer* old, int64_t top, int64_t bottom);

    std::atomic<int64_t> top_{1};
    std::atomic<int64_t> bottom_{1};
    std::atomic<Buffer*> buffer_;
    std::vector<std::unique_ptr<Buffer>> retired_;  // owner only
  };

  // Enqueues a task: onto the current worker's own deque when called from a
  // pool thread, else onto the injection queue. Wakes a sleeper.
  void Submit(Task* task);

  // Tries to acquire and execute one task (own deque first, then the
  // injection queue, then stealing). `self` < 0 for external helpers.
  // Returns false when no task was found.
  bool RunOneTask(int self);

  Task* TryAcquire(int self);
  static void Execute(Task* task);
  void WorkerLoop(int self);

  std::vector<std::unique_ptr<Deque>> deques_;  // one per worker thread
  std::mutex inject_mutex_;
  std::deque<Task*> inject_;

  // Eventcount-lite: Submit bumps signal_ under wake_mutex_; a worker that
  // found nothing re-checks signal_ against its pre-scan snapshot before
  // sleeping, which closes the lost-wakeup window.
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  uint64_t signal_ = 0;
  std::atomic<bool> stop_{false};

  std::vector<std::thread> threads_;

  static thread_local ThreadPool* current_pool_;
  static thread_local int worker_index_;
};

/// Fork/join scope over a ThreadPool. Run() forks a task; Wait() blocks
/// until every task forked through this group finished, executing other pool
/// tasks while it waits (help-first join), and rethrows the first exception
/// any task threw. Groups nest freely: a task may create and wait on its own
/// TaskGroup. A group may be reused after Wait() returns.
class TaskGroup {
 public:
  /// nullptr selects ThreadPool::Global().
  explicit TaskGroup(ThreadPool* pool = nullptr);

  /// Waits for outstanding tasks (exceptions swallowed — call Wait() to
  /// observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks `fn` onto the pool.
  void Run(std::function<void()> fn);

  /// Joins: returns once all forked tasks completed. Rethrows the first
  /// captured exception.
  void Wait();

 private:
  friend class ThreadPool;
  void OnTaskDone(std::exception_ptr exception);

  ThreadPool* pool_;
  std::atomic<int64_t> pending_{0};
  std::mutex exception_mutex_;
  std::exception_ptr exception_;
};

}  // namespace dcer

#endif  // DCER_COMMON_THREAD_POOL_H_
