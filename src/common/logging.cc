#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dcer {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < g_level.load()) return;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kDebug:
      tag = "D";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kWarning:
      tag = "W";
      break;
    case LogLevel::kError:
      tag = "E";
      break;
  }
  // Strip directories from file for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", tag, base, line, msg.c_str());
}

}  // namespace internal
}  // namespace dcer
