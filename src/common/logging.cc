#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace dcer {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;  // guards the sink and serializes stderr lines

std::function<void(const std::string&)>& SinkSlot() {
  static auto* sink = new std::function<void(const std::string&)>();
  return *sink;
}

uint64_t WallMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Appends `s` JSON-escaped (without surrounding quotes).
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

void SetLogSink(std::function<void(const std::string& line)> sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  SinkSlot() = std::move(sink);
}

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

namespace internal {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

void EmitLine(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto& sink = SinkSlot();
  if (sink) {
    sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (level < g_level.load()) return;
  static const char kTags[] = {'D', 'I', 'W', 'E'};
  const int idx = static_cast<int>(level);
  const char tag = idx >= 0 && idx < 4 ? kTags[idx] : '?';
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%c %s:%d] ", tag, Basename(file),
                line);
  EmitLine(prefix + msg);
}

LogRateLimiter::LogRateLimiter(double per_sec, double burst)
    : per_sec_(per_sec > 0 ? per_sec : 1.0),
      burst_(burst >= 1.0 ? burst : 1.0),
      tokens_(burst_) {}

bool LogRateLimiter::Admit(uint64_t* suppressed) {
  const uint64_t now = MonotonicNanos();
  std::lock_guard<std::mutex> lock(mu_);
  if (last_ns_ != 0 && now > last_ns_) {
    tokens_ += static_cast<double>(now - last_ns_) / 1e9 * per_sec_;
    if (tokens_ > burst_) tokens_ = burst_;
  }
  last_ns_ = now;
  if (tokens_ < 1.0) {
    ++suppressed_;
    return false;
  }
  tokens_ -= 1.0;
  *suppressed = suppressed_;
  suppressed_ = 0;
  return true;
}

}  // namespace internal

StructuredLog::StructuredLog(LogLevel level, const char* event,
                             const char* file, int line,
                             internal::LogRateLimiter* limiter)
    : enabled_(level >= g_level.load()), limiter_(limiter) {
  if (!enabled_) return;
  line_ = "{\"ts_ms\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(WallMillis()));
  line_ += buf;
  line_ += ",\"level\":\"";
  line_ += internal::LevelName(level);
  line_ += "\",\"event\":\"";
  AppendEscaped(event, &line_);
  line_ += "\",\"src\":\"";
  std::snprintf(buf, sizeof(buf), "%s:%d", Basename(file), line);
  AppendEscaped(buf, &line_);
  line_ += "\"";
}

StructuredLog::~StructuredLog() {
  if (!enabled_) return;
  uint64_t suppressed = 0;
  if (limiter_ != nullptr && !limiter_->Admit(&suppressed)) return;
  if (suppressed != 0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"suppressed\":%llu",
                  static_cast<unsigned long long>(suppressed));
    line_ += buf;
  }
  line_ += "}";
  internal::EmitLine(line_);
}

void StructuredLog::Key(const char* key) {
  line_ += ",\"";
  AppendEscaped(key, &line_);
  line_ += "\":";
}

StructuredLog& StructuredLog::KV(const char* key, const std::string& value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += "\"";
  AppendEscaped(value, &line_);
  line_ += "\"";
  return *this;
}

StructuredLog& StructuredLog::KV(const char* key, const char* value) {
  return KV(key, std::string(value));
}

StructuredLog& StructuredLog::KV(const char* key, uint64_t value) {
  if (!enabled_) return *this;
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  line_ += buf;
  return *this;
}

StructuredLog& StructuredLog::KV(const char* key, int64_t value) {
  if (!enabled_) return *this;
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  line_ += buf;
  return *this;
}

StructuredLog& StructuredLog::KV(const char* key, double value) {
  if (!enabled_) return *this;
  Key(key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  line_ += buf;
  return *this;
}

StructuredLog& StructuredLog::KV(const char* key, bool value) {
  if (!enabled_) return *this;
  Key(key);
  line_ += value ? "true" : "false";
  return *this;
}

}  // namespace dcer
