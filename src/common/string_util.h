#ifndef DCER_COMMON_STRING_UTIL_H_
#define DCER_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dcer {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on runs of whitespace; drops empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view s);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

std::string ToLower(std::string_view s);

std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Levenshtein edit distance with an early-exit bound; returns bound+1 if the
/// distance exceeds `bound` (bound < 0 means unbounded).
size_t EditDistance(std::string_view a, std::string_view b, int bound = -1);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dcer

#endif  // DCER_COMMON_STRING_UTIL_H_
