#ifndef DCER_COMMON_TIMER_H_
#define DCER_COMMON_TIMER_H_

#include <chrono>

namespace dcer {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dcer

#endif  // DCER_COMMON_TIMER_H_
