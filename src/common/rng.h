#ifndef DCER_COMMON_RNG_H_
#define DCER_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcer {

/// Deterministic xoshiro256** PRNG. All data generators and experiments use
/// this (never std::rand), so every table and figure is reproducible from a
/// seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed integer in [0, n) with skew parameter s (s=0 uniform).
  /// Used for skewed workloads in the balancing experiments.
  uint64_t Zipf(uint64_t n, double s);

  /// Random element index weighted by `weights` (must be non-empty).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Lower-case alphabetic string of the given length.
  std::string RandomWord(size_t min_len, size_t max_len);

  /// Forks an independent stream (for per-worker determinism).
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

}  // namespace dcer

#endif  // DCER_COMMON_RNG_H_
