#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dcer {

thread_local ThreadPool* ThreadPool::current_pool_ = nullptr;
thread_local int ThreadPool::worker_index_ = -1;

// ---------------------------------------------------------------------------
// Chase–Lev deque.

namespace {
constexpr size_t kInitialDequeCapacity = 256;  // power of two
}  // namespace

ThreadPool::Deque::Deque() : buffer_(new Buffer(kInitialDequeCapacity)) {}

ThreadPool::Deque::~Deque() { delete buffer_.load(std::memory_order_relaxed); }

ThreadPool::Deque::Buffer* ThreadPool::Deque::Grow(Buffer* old, int64_t top,
                                                   int64_t bottom) {
  auto* grown = new Buffer(old->capacity() * 2);
  for (int64_t i = top; i < bottom; ++i) grown->Put(i, old->Get(i));
  buffer_.store(grown, std::memory_order_release);
  // Thieves may still hold the old pointer; retire it instead of freeing.
  retired_.emplace_back(old);
  return grown;
}

void ThreadPool::Deque::Push(Task* task) {
  int64_t b = bottom_.load(std::memory_order_relaxed);
  int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > static_cast<int64_t>(buf->capacity()) - 1) {
    buf = Grow(buf, t, b);
  }
  buf->Put(b, task);
  // seq_cst publishes the slot before the new bottom becomes visible.
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

ThreadPool::Task* ThreadPool::Deque::Pop() {
  int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);
  int64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // empty: restore
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  Task* task = buf->Get(b);
  if (t == b) {
    // Last element: race the thieves for it.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = nullptr;  // a thief won
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  return task;
}

ThreadPool::Task* ThreadPool::Deque::Steal() {
  int64_t t = top_.load(std::memory_order_seq_cst);
  int64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  Task* task = buf->Get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race to the owner or another thief
  }
  return task;
}

// ---------------------------------------------------------------------------
// Pool.

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  deques_.reserve(n);
  for (int i = 0; i < n; ++i) deques_.push_back(std::make_unique<Deque>());
  threads_.reserve(n);
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_seq_cst);
    ++signal_;
  }
  wake_cv_.notify_all();
  for (auto& t : threads_) t.join();
  // Orphaned tasks (group never waited — a caller bug) are freed, not run.
  for (auto& deque : deques_) {
    while (Task* task = deque->Pop()) delete task;
  }
  for (Task* task : inject_) delete task;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<int>(std::max(2u, std::thread::hardware_concurrency())));
  return *pool;  // leaked deliberately: outlives static-destruction order
}

void ThreadPool::Submit(Task* task) {
  if (current_pool_ == this && worker_index_ >= 0) {
    deques_[worker_index_]->Push(task);
  } else {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    inject_.push_back(task);
  }
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    ++signal_;
  }
  wake_cv_.notify_one();
}

ThreadPool::Task* ThreadPool::TryAcquire(int self) {
  if (self >= 0) {
    if (Task* task = deques_[self]->Pop()) return task;
  }
  {
    std::lock_guard<std::mutex> lock(inject_mutex_);
    if (!inject_.empty()) {
      Task* task = inject_.front();
      inject_.pop_front();
      return task;
    }
  }
  int n = static_cast<int>(deques_.size());
  int start = self >= 0 ? self + 1 : 0;
  for (int i = 0; i < n; ++i) {
    if (Task* task = deques_[(start + i) % n]->Steal()) return task;
  }
  return nullptr;
}

void ThreadPool::Execute(Task* task) {
  std::exception_ptr exception;
  try {
    task->fn();
  } catch (...) {
    exception = std::current_exception();
  }
  TaskGroup* group = task->group;
  delete task;
  group->OnTaskDone(exception);
}

bool ThreadPool::RunOneTask(int self) {
  Task* task = TryAcquire(self);
  if (task == nullptr) return false;
  Execute(task);
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  current_pool_ = this;
  worker_index_ = self;
  uint64_t seen = 0;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      seen = signal_;
    }
    while (RunOneTask(self)) {
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_.load(std::memory_order_seq_cst)) break;
    // If a submit landed after the snapshot, rescan instead of sleeping.
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_seq_cst) || signal_ != seen;
    });
    if (stop_.load(std::memory_order_seq_cst)) break;
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& body) {
  if (begin >= end) return;
  size_t n = end - begin;
  if (grain == 0) {
    grain = std::max<size_t>(1, n / (static_cast<size_t>(num_threads()) * 4));
  }
  if (n <= grain) {
    body(begin, end);
    return;
  }
  TaskGroup group(this);
  for (size_t lo = begin; lo < end; lo += grain) {
    size_t hi = std::min(end, lo + grain);
    group.Run([&body, lo, hi] { body(lo, hi); });
  }
  group.Wait();
}

// ---------------------------------------------------------------------------
// TaskGroup.

TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {}

TaskGroup::~TaskGroup() {
  if (pending_.load(std::memory_order_acquire) > 0) {
    try {
      Wait();
    } catch (...) {
    }
  }
}

void TaskGroup::Run(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  pool_->Submit(new ThreadPool::Task{std::move(fn), this});
}

void TaskGroup::OnTaskDone(std::exception_ptr exception) {
  if (exception != nullptr) {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    if (exception_ == nullptr) exception_ = exception;
  }
  pending_.fetch_sub(1, std::memory_order_acq_rel);
}

void TaskGroup::Wait() {
  // Help-first join: drain pool tasks (not necessarily ours) while our own
  // are outstanding. Helping guarantees progress from any thread, including
  // external ones, so nested waits cannot deadlock.
  int self =
      ThreadPool::current_pool_ == pool_ ? ThreadPool::worker_index_ : -1;
  int idle_spins = 0;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (pool_->RunOneTask(self)) {
      idle_spins = 0;
    } else if (++idle_spins < 64) {
      // Our tasks are running on other threads; nothing left to help with.
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  std::exception_ptr exception;
  {
    std::lock_guard<std::mutex> lock(exception_mutex_);
    exception = std::exchange(exception_, nullptr);
  }
  if (exception != nullptr) std::rethrow_exception(exception);
}

}  // namespace dcer
