#ifndef DCER_COMMON_HASH_H_
#define DCER_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dcer {

/// 64-bit FNV-1a over raw bytes. Deterministic across runs and platforms,
/// which matters for reproducible partitioning experiments.
inline uint64_t Fnv1a64(const void* data, size_t len, uint64_t seed = 0) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ (seed * 0x9E3779B97F4A7C15ULL);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return Fnv1a64(s.data(), s.size(), seed);
}

inline uint64_t HashInt(uint64_t x, uint64_t seed = 0) {
  // SplitMix64 finalizer.
  x += 0x9E3779B97F4A7C15ULL + seed * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

/// Hasher for containers keyed by Value (or anything exposing a
/// `uint64_t Hash()` method). The single definition shared by the inverted
/// index, blocking baselines, and the rule miner — templated so this header
/// need not depend on relational/value.h.
struct ValueHash {
  template <typename V>
  size_t operator()(const V& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

/// Hasher for uint64 keys that are not already mixed (interned string ids,
/// equality codes): identity hashing would put dense ids in consecutive
/// buckets and collide patterned doubles.
struct CodeHash {
  size_t operator()(uint64_t k) const { return static_cast<size_t>(HashInt(k)); }
};

/// Hash for unordered pairs: symmetric in (a, b).
inline uint64_t HashUnorderedPair(uint64_t a, uint64_t b) {
  if (a > b) {
    uint64_t t = a;
    a = b;
    b = t;
  }
  return HashCombine(HashInt(a), HashInt(b));
}

}  // namespace dcer

#endif  // DCER_COMMON_HASH_H_
