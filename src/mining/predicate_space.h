#ifndef DCER_MINING_PREDICATE_SPACE_H_
#define DCER_MINING_PREDICATE_SPACE_H_

#include <string>
#include <vector>

#include "ml/registry.h"
#include "relational/dataset.h"

namespace dcer {

/// One candidate predicate of the discovery search space (Sec. VI "MRLs"):
/// equality or an ML predicate over an aligned attribute of a tuple pair.
/// Following the paper's extension of DC discovery, ML predicates enter the
/// evidence set exactly like equality predicates.
struct CandidatePredicate {
  enum class Kind { kEq, kMl };
  Kind kind = Kind::kEq;
  size_t lhs_attr = 0;
  size_t rhs_attr = 0;  // == lhs_attr unless two-source with differing schema
  int ml_id = -1;

  /// Truth value on a concrete tuple pair.
  bool Holds(const Dataset& dataset, const MlRegistry& registry, Gid a,
             Gid b) const;

  /// DSL rendering, e.g. "t.name = s.name" or "M1(t.desc, s.desc)".
  std::string ToText(const Schema& lhs, const Schema& rhs,
                     const MlRegistry& registry) const;
};

/// Builds the predicate space for pairs of relation `rel` (or cross pairs
/// (rel, pair_rel)): equality per aligned attribute plus every registered
/// classifier applied to every string attribute.
std::vector<CandidatePredicate> BuildPredicateSpace(const Dataset& dataset,
                                                    const MlRegistry& registry,
                                                    size_t rel, int pair_rel);

}  // namespace dcer

#endif  // DCER_MINING_PREDICATE_SPACE_H_
