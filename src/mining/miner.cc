#include "mining/miner.h"

#include <cassert>
#include <set>
#include <unordered_map>

#include "chase/inverted_index.h"
#include "common/logging.h"
#include "common/rng.h"
#include "rules/parser.h"

namespace dcer {

namespace {

// Evidence: per labeled pair, the bitmask of candidate predicates that hold.
std::vector<uint64_t> BuildEvidence(
    const Dataset& dataset, const MlRegistry& registry,
    const std::vector<CandidatePredicate>& space,
    const std::vector<std::pair<std::pair<Gid, Gid>, bool>>& labeled) {
  assert(space.size() <= 64 && "predicate space must fit one word");
  std::vector<uint64_t> out;
  out.reserve(labeled.size());
  for (const auto& [pair, _] : labeled) {
    uint64_t mask = 0;
    for (size_t p = 0; p < space.size(); ++p) {
      if (space[p].Holds(dataset, registry, pair.first, pair.second)) {
        mask |= uint64_t{1} << p;
      }
    }
    out.push_back(mask);
  }
  return out;
}

}  // namespace

RuleSet MineRules(
    const Dataset& dataset, const MlRegistry& registry, size_t rel,
    int pair_rel,
    const std::vector<std::pair<std::pair<Gid, Gid>, bool>>& labeled,
    const MinerOptions& options) {
  RuleSet rules;
  std::vector<CandidatePredicate> space =
      BuildPredicateSpace(dataset, registry, rel, pair_rel);
  if (space.size() > 64) space.resize(64);
  std::vector<uint64_t> evidence =
      BuildEvidence(dataset, registry, space, labeled);

  // Score one predicate set: support = positives covered, confidence =
  // positives / all pairs covered.
  auto score = [&](uint64_t mask, size_t* support, double* confidence) {
    size_t pos = 0;
    size_t all = 0;
    for (size_t i = 0; i < labeled.size(); ++i) {
      if ((evidence[i] & mask) == mask) {
        ++all;
        if (labeled[i].second) ++pos;
      }
    }
    *support = pos;
    *confidence = all == 0 ? 0 : static_cast<double>(pos) / all;
  };

  // Breadth-first over set sizes so accepted rules are minimal: once a set
  // qualifies, its supersets are skipped.
  std::vector<uint64_t> accepted;
  auto subsumed = [&](uint64_t mask) {
    for (uint64_t acc : accepted) {
      if ((mask & acc) == acc) return true;
    }
    return false;
  };

  std::vector<uint64_t> frontier = {0};
  for (size_t depth = 1; depth <= options.max_predicates; ++depth) {
    std::vector<uint64_t> next;
    for (uint64_t base : frontier) {
      // Highest predicate already in `base` (extend upward only: canonical).
      size_t start = 0;
      if (base != 0) {
        start = 64 - static_cast<size_t>(__builtin_clzll(base));
      }
      for (size_t p = start; p < space.size(); ++p) {
        uint64_t mask = base | (uint64_t{1} << p);
        if (subsumed(mask)) continue;
        size_t support = 0;
        double confidence = 0;
        score(mask, &support, &confidence);
        if (support < options.min_support) continue;  // prune: monotone
        if (confidence >= options.min_confidence) {
          accepted.push_back(mask);
        } else {
          next.push_back(mask);
        }
      }
    }
    frontier = std::move(next);
  }

  // Render accepted predicate sets as MRLs and parse them back.
  const Schema& lhs = dataset.relation(rel).schema();
  size_t rrel = pair_rel < 0 ? rel : static_cast<size_t>(pair_rel);
  const Schema& rhs = dataset.relation(rrel).schema();
  int idx = 0;
  for (uint64_t mask : accepted) {
    std::string text = "mined" + std::to_string(idx++) + ": " + lhs.name() +
                       "(t) ^ " + rhs.name() + "(s)";
    for (size_t p = 0; p < space.size(); ++p) {
      if (mask & (uint64_t{1} << p)) {
        text += " ^ " + space[p].ToText(lhs, rhs, registry);
      }
    }
    text += " -> t.id = s.id";
    Rule rule;
    Status st = ParseRule(text, dataset, registry, &rule);
    if (!st.ok()) {
      DCER_LOG(Error) << "mined rule failed to parse: " << st.ToString();
      continue;
    }
    rules.Add(std::move(rule));
  }
  return rules;
}

std::vector<std::pair<std::pair<Gid, Gid>, bool>> BuildDiscoverySample(
    const Dataset& dataset, const GroundTruth& truth, size_t rel,
    int pair_rel, size_t num_random_neg, uint64_t seed) {
  std::vector<std::pair<std::pair<Gid, Gid>, bool>> out;
  const Relation& lrel = dataset.relation(rel);
  const Relation& rrel =
      dataset.relation(pair_rel < 0 ? rel : static_cast<size_t>(pair_rel));
  const bool cross = pair_rel >= 0;

  auto in_scope = [&](Gid a, Gid b) {
    uint32_t ra = dataset.relation_of(a);
    uint32_t rb = dataset.relation_of(b);
    if (cross) {
      return (ra == rel && rb == static_cast<uint32_t>(pair_rel)) ||
             (rb == rel && ra == static_cast<uint32_t>(pair_rel));
    }
    return ra == rel && rb == rel;
  };

  std::set<std::pair<Gid, Gid>> seen;
  auto add = [&](Gid a, Gid b, bool label) {
    if (a > b) std::swap(a, b);
    if (a == b || !seen.insert({a, b}).second) return;
    out.push_back({{a, b}, label});
  };

  // All in-scope positive pairs.
  std::unordered_map<uint64_t, std::vector<Gid>> clusters;
  for (Gid g = 0; g < truth.size(); ++g) {
    if (truth.entity(g) != GroundTruth::kNoEntity) {
      clusters[truth.entity(g)].push_back(g);
    }
  }
  for (const auto& [_, members] : clusters) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (in_scope(members[i], members[j])) {
          add(members[i], members[j], true);
        }
      }
    }
  }

  // Hard negatives: non-matching pairs agreeing on a non-key attribute.
  constexpr size_t kPerBlockCap = 50;
  constexpr size_t kHardCap = 20000;
  size_t hard = 0;
  size_t n = std::min(lrel.schema().num_attrs(), rrel.schema().num_attrs());
  for (size_t attr = 0; attr < n && hard < kHardCap; ++attr) {
    if (lrel.schema().attr(attr).type != rrel.schema().attr(attr).type) {
      continue;
    }
    // Code-keyed blocks from the columnar slice (attribute types already
    // matched above, so cross-relation codes are comparable; strings share
    // the dataset's interning pool).
    std::unordered_map<uint64_t, std::vector<Gid>, CodeHash> blocks;
    auto index_rel = [&](const Relation& r) {
      uint64_t code;
      for (size_t row = 0; row < r.num_rows(); ++row) {
        if (JoinableCellCode(r, static_cast<uint32_t>(row), attr, &code)) {
          blocks[code].push_back(r.gid(row));
        }
      }
    };
    index_rel(lrel);
    if (cross) index_rel(rrel);
    for (const auto& [_, gids] : blocks) {
      size_t emitted = 0;
      for (size_t i = 0; i < gids.size() && emitted < kPerBlockCap; ++i) {
        for (size_t j = i + 1; j < gids.size() && emitted < kPerBlockCap;
             ++j) {
          if (!in_scope(gids[i], gids[j])) continue;
          if (truth.IsMatch(gids[i], gids[j])) continue;
          add(gids[i], gids[j], false);
          ++emitted;
          if (++hard >= kHardCap) break;
        }
      }
    }
  }

  // Random negatives.
  Rng rng(seed);
  size_t tries = 0;
  size_t found = 0;
  while (found < num_random_neg && tries < num_random_neg * 50) {
    ++tries;
    Gid a = lrel.gid(rng.Uniform(lrel.num_rows()));
    Gid b = rrel.gid(rng.Uniform(rrel.num_rows()));
    if (a == b || truth.IsMatch(a, b) || !in_scope(a, b)) continue;
    add(a, b, false);
    ++found;
  }
  return out;
}

}  // namespace dcer
