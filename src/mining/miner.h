#ifndef DCER_MINING_MINER_H_
#define DCER_MINING_MINER_H_

#include "eval/metrics.h"
#include "mining/predicate_space.h"
#include "rules/rule.h"

namespace dcer {

/// Configuration of the MRL discovery search (Sec. VI "MRLs": the DC
/// discovery algorithm of Chu et al. extended with ML predicates).
struct MinerOptions {
  size_t max_predicates = 3;    // precondition size bound
  double min_confidence = 0.9;  // P(match | X holds) over the labeled pairs
  size_t min_support = 3;       // #positive pairs satisfying X
};

/// Discovers two-variable MRLs `R(t) ^ R'(s) ^ X -> t.id = s.id` from
/// labeled pairs: builds the predicate space, computes evidence sets
/// (which candidate predicates hold on each labeled pair), then searches
/// minimal predicate sets meeting support/confidence. Returned rules parse
/// against `dataset`/`registry` and plug straight into Match/DMatch.
RuleSet MineRules(
    const Dataset& dataset, const MlRegistry& registry, size_t rel,
    int pair_rel,
    const std::vector<std::pair<std::pair<Gid, Gid>, bool>>& labeled,
    const MinerOptions& options);

/// Builds the labeled-pair sample the discovery runs on: every positive pair
/// of the ground truth (within `rel`, or across (rel, pair_rel)), every
/// "hard negative" — a non-matching pair that agrees on some non-key
/// attribute (enumerated blocking-style, capped) — plus `num_random_neg`
/// random negatives. Hard negatives approximate the paper's full evidence
/// set over all tuple pairs at tractable size; without them, sampled random
/// negatives make almost any predicate look precise.
std::vector<std::pair<std::pair<Gid, Gid>, bool>> BuildDiscoverySample(
    const Dataset& dataset, const GroundTruth& truth, size_t rel,
    int pair_rel, size_t num_random_neg, uint64_t seed);

}  // namespace dcer

#endif  // DCER_MINING_MINER_H_
