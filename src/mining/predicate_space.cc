#include "mining/predicate_space.h"

#include <unordered_set>

#include "chase/fact.h"
#include "common/hash.h"

namespace dcer {

bool CandidatePredicate::Holds(const Dataset& dataset,
                               const MlRegistry& registry, Gid a,
                               Gid b) const {
  const Row& ra = dataset.tuple(a);
  const Row& rb = dataset.tuple(b);
  if (kind == Kind::kEq) {
    return EqJoinable(ra[lhs_attr], rb[rhs_attr]);
  }
  uint64_t key =
      HashCombine(HashInt(lhs_attr * 131 + rhs_attr),
                  HashUnorderedPair(HashInt(a), HashInt(b)));
  return registry.Predict(ml_id, key, {ra[lhs_attr]}, {rb[rhs_attr]});
}

std::string CandidatePredicate::ToText(const Schema& lhs, const Schema& rhs,
                                       const MlRegistry& registry) const {
  if (kind == Kind::kEq) {
    return "t." + lhs.attr(lhs_attr).name + " = s." + rhs.attr(rhs_attr).name;
  }
  return registry.classifier(ml_id).name() + "(t." + lhs.attr(lhs_attr).name +
         ", s." + rhs.attr(rhs_attr).name + ")";
}

namespace {

// Profile of one attribute over a relation: fraction of distinct values and
// average string length. Key-like attributes (nearly all distinct, short)
// are excluded from the search space, as DC-discovery systems do — equality
// on an identifier is vacuous and similarity on synthetic keys is noise.
struct AttrProfile {
  double distinct_ratio = 0;
  double avg_len = 0;
};

AttrProfile ProfileAttr(const Relation& relation, size_t attr) {
  AttrProfile p;
  if (relation.num_rows() == 0) return p;
  // One columnar slice: distinctness counts exact equality codes (no Value
  // materialization, no hash collisions); NULL contributes one bucket like
  // the old NULL-hash did.
  const Column& col = relation.column(attr);
  const bool is_string = col.type() == ValueType::kString;
  std::unordered_set<uint64_t, CodeHash> distinct;
  bool saw_null = false;
  double total_len = 0;
  for (size_t row = 0; row < relation.num_rows(); ++row) {
    if (col.is_null(row)) {
      saw_null = true;
      continue;
    }
    distinct.insert(col.code_at(row));
    if (is_string) {
      total_len +=
          static_cast<double>(col.str_at(row, relation.pool()).size());
    }
  }
  p.distinct_ratio =
      static_cast<double>(distinct.size() + (saw_null ? 1 : 0)) /
      static_cast<double>(relation.num_rows());
  p.avg_len = total_len / static_cast<double>(relation.num_rows());
  return p;
}

}  // namespace

std::vector<CandidatePredicate> BuildPredicateSpace(const Dataset& dataset,
                                                    const MlRegistry& registry,
                                                    size_t rel, int pair_rel) {
  const Relation& lrel = dataset.relation(rel);
  const Schema& lhs = lrel.schema();
  const Schema& rhs =
      dataset.relation(pair_rel < 0 ? rel : static_cast<size_t>(pair_rel))
          .schema();
  std::vector<CandidatePredicate> out;
  size_t n = std::min(lhs.num_attrs(), rhs.num_attrs());
  for (size_t a = 0; a < n; ++a) {
    if (lhs.attr(a).type != rhs.attr(a).type) continue;
    AttrProfile profile = ProfileAttr(lrel, a);
    bool key_like = profile.distinct_ratio > 0.9;
    // Equality on a key-like attribute never generalizes.
    if (!key_like) {
      CandidatePredicate eq;
      eq.kind = CandidatePredicate::Kind::kEq;
      eq.lhs_attr = a;
      eq.rhs_attr = a;
      out.push_back(eq);
    }
    if (lhs.attr(a).type == ValueType::kString) {
      // ML similarity is meaningful for textual content (long values),
      // even when distinct, but not for short synthetic identifiers.
      if (key_like && profile.avg_len < 10) continue;
      for (size_t m = 0; m < registry.size(); ++m) {
        CandidatePredicate ml;
        ml.kind = CandidatePredicate::Kind::kMl;
        ml.lhs_attr = a;
        ml.rhs_attr = a;
        ml.ml_id = static_cast<int>(m);
        out.push_back(ml);
      }
    }
  }
  return out;
}

}  // namespace dcer
