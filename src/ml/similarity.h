#ifndef DCER_ML_SIMILARITY_H_
#define DCER_ML_SIMILARITY_H_

#include <string_view>

namespace dcer {

/// Token-level Jaccard similarity (case-insensitive, whitespace tokens).
/// Allocation-free on the hot path: tokenizes into reusable per-thread
/// scratch and intersects sorted token ranges instead of hashing.
double TokenJaccard(std::string_view a, std::string_view b);

/// Normalized edit similarity: 1 - dist / max(|a|, |b|); 1.0 for two empties.
/// Uses the bit-parallel Myers distance kernel (see common/string_util.h).
double EditSimilarity(std::string_view a, std::string_view b);

/// 1 if relative difference <= tol, decaying linearly to 0 at 2*tol.
double NumericSimilarity(double a, double b, double tol);

namespace reference {

/// Straightforward hash-set implementation of TokenJaccard. The optimized
/// kernel must agree with this exactly; tests cross-check on random corpora.
double TokenJaccard(std::string_view a, std::string_view b);

/// Full-matrix dynamic-programming EditSimilarity, same contract as the
/// optimized kernel.
double EditSimilarity(std::string_view a, std::string_view b);

/// Plain O(nm) Levenshtein distance (no banding, no bit-parallelism).
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace reference

}  // namespace dcer

#endif  // DCER_ML_SIMILARITY_H_
