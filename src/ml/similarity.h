#ifndef DCER_ML_SIMILARITY_H_
#define DCER_ML_SIMILARITY_H_

#include <string_view>

namespace dcer {

/// Token-level Jaccard similarity (case-insensitive, whitespace tokens).
double TokenJaccard(std::string_view a, std::string_view b);

/// Normalized edit similarity: 1 - dist / max(|a|, |b|); 1.0 for two empties.
double EditSimilarity(std::string_view a, std::string_view b);

/// 1 if relative difference <= tol, decaying linearly to 0 at 2*tol.
double NumericSimilarity(double a, double b, double tol);

}  // namespace dcer

#endif  // DCER_ML_SIMILARITY_H_
