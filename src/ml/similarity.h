#ifndef DCER_ML_SIMILARITY_H_
#define DCER_ML_SIMILARITY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dcer {

/// Token-level Jaccard similarity (case-insensitive, whitespace tokens).
/// Allocation-free on the hot path: tokenizes into reusable per-thread
/// scratch and intersects sorted token ranges instead of hashing.
double TokenJaccard(std::string_view a, std::string_view b);

/// Normalized edit similarity: 1 - dist / max(|a|, |b|); 1.0 for two empties.
/// Uses the bit-parallel Myers distance kernel (see common/string_util.h).
double EditSimilarity(std::string_view a, std::string_view b);

/// 1 if relative difference <= tol, decaying linearly to 0 at 2*tol.
double NumericSimilarity(double a, double b, double tol);

/// "No edit distance passes the threshold" sentinel for EditPassBound.
inline constexpr size_t kEditNoPass = SIZE_MAX;

/// Largest integer edit distance d such that the EXACT double predicate
/// 1.0 - d/max_len >= threshold holds (kEditNoPass when even d = 0 fails).
/// Found by nudging the closed-form estimate against the IEEE-evaluated
/// predicate itself, so `d <= EditPassBound(m, t)` is bit-for-bit equivalent
/// to `EditSimilarity(a, b) >= t` for strings with max length m — which lets
/// both the bounded classifier predicate and the batched edit kernel run the
/// banded Myers DP (common/string_util.h) without ever disagreeing with the
/// unbanded score at a rounding boundary. Requires max_len >= 1.
size_t EditPassBound(size_t max_len, double threshold);

namespace ml_text {

/// Lowercased, sorted, deduplicated whitespace tokens of `text` — the
/// token-set semantics of TokenJaccard, shared by the PPJoin-style candidate
/// index and the ProfileStore so the pruning bounds, the precomputed
/// profiles and the verified score can never diverge.
std::vector<std::string> UniqueTokensLower(std::string_view text);

/// Allocation-light form of UniqueTokensLower for bulk passes (the
/// ProfileStore build visits every pool string): lowercases `text` into
/// `*lower` and fills `*out` with sorted deduplicated views into it. The
/// views alias `*lower` and are invalidated by its next reuse. Token set
/// and order are identical to UniqueTokensLower.
void UniqueTokenViewsLower(std::string_view text, std::string* lower,
                           std::vector<std::string_view>* out);

}  // namespace ml_text

namespace reference {

/// Straightforward hash-set implementation of TokenJaccard. The optimized
/// kernel must agree with this exactly; tests cross-check on random corpora.
double TokenJaccard(std::string_view a, std::string_view b);

/// Full-matrix dynamic-programming EditSimilarity, same contract as the
/// optimized kernel.
double EditSimilarity(std::string_view a, std::string_view b);

/// Plain O(nm) Levenshtein distance (no banding, no bit-parallelism).
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace reference

}  // namespace dcer

#endif  // DCER_ML_SIMILARITY_H_
