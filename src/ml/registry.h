#ifndef DCER_ML_REGISTRY_H_
#define DCER_ML_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/classifier.h"

namespace dcer {

/// Fixed-capacity concurrent memo table for boolean predictions: a striped
/// open-addressing array of 64-bit atomic slots, each packing (key, value,
/// occupied) into one word. Hits are a handful of relaxed atomic loads (no
/// lock, no shared-cacheline write); inserts are a single CAS. Every leaf
/// valuation of the chase probes this table, which is why the previous
/// two-lock-per-call sharded-map design showed up in profiles.
///
/// Because predictions are pure functions of the key, the table can be
/// lossy: when a probe window is full the insert is dropped and the caller
/// simply recomputes next time. Racing inserts of the same key write the
/// same packed word, so every outcome is consistent.
class PredictionCache {
 public:
  /// `slots_per_stripe_log2`: each of the 64 stripes holds 2^k slots
  /// (8 bytes per slot). The default 2^13 gives a 4 MiB table.
  explicit PredictionCache(int slots_per_stripe_log2 = 13);

  /// 0 = cached false, 1 = cached true, -1 = not cached.
  int Lookup(uint64_t key) const;

  /// Memoizes key -> value; silently dropped if the probe window is full.
  void Insert(uint64_t key, bool value);

  /// Empties the table. NOT safe concurrently with Lookup/Insert; callers
  /// (bench harness) clear only between runs.
  void Clear();

 private:
  static constexpr size_t kStripes = 64;
  static constexpr size_t kProbeWindow = 16;

  // Slot word: 0 = empty; else (key << 2) | 2 | value. Dropping the key's
  // top two bits is harmless — keys are already 64-bit hashes.
  static uint64_t Pack(uint64_t key, bool value) {
    return (key << 2) | 2 | static_cast<uint64_t>(value);
  }

  struct Stripe {
    std::unique_ptr<std::atomic<uint64_t>[]> slots;
  };

  size_t mask_;  // slots per stripe - 1
  Stripe stripes_[kStripes];
};

/// Holds the named ML classifiers referenced by MRLs (M1, M2, ...) and
/// memoizes their predictions. ML predicates are pure functions of their
/// attribute vectors, so the chase may ask about the same pair many times
/// (once per rule and superstep); the lock-free cache makes repeats cheap
/// and keeps parallel workers and intra-worker enumeration shards from
/// serializing on mutexes.
class MlRegistry {
 public:
  MlRegistry() = default;

  MlRegistry(const MlRegistry&) = delete;
  MlRegistry& operator=(const MlRegistry&) = delete;

  /// Registers a classifier; returns its dense id. Names must be unique.
  int Register(std::unique_ptr<MlClassifier> classifier);

  /// Id of the classifier with this name, or -1.
  int Lookup(const std::string& name) const;

  size_t size() const { return classifiers_.size(); }
  const MlClassifier& classifier(int id) const { return *classifiers_[id]; }

  /// Cached boolean prediction of classifier `id` on (a, b).
  /// `pair_key` must uniquely identify (predicate instance, tuple pair);
  /// the chase passes hash(pred-signature, gid_a, gid_b). Thread-safe.
  bool Predict(int id, uint64_t pair_key, const std::vector<Value>& a,
               const std::vector<Value>& b) const;

  /// Cache-probe half of Predict: 0/1 when the prediction is memoized
  /// (counted as a hit), -1 when the caller must materialize the attribute
  /// vectors and call PredictAndCache. Lets the chase skip building (a, b)
  /// entirely on the hit path. Thread-safe.
  int CachedPrediction(int id, uint64_t pair_key) const;

  /// Compute half of Predict: runs the classifier and memoizes the result.
  /// Thread-safe; racing computes agree (classifiers are pure).
  bool PredictAndCache(int id, uint64_t pair_key, const std::vector<Value>& a,
                       const std::vector<Value>& b) const;

  /// Stats-free cache probe (no hit counter): the batch evaluator uses it to
  /// decide which candidates still need scoring without inflating the hit
  /// rate the benchmarks report for the per-pair path. Thread-safe.
  int PeekPrediction(int id, uint64_t pair_key) const;

  /// Memoizes an externally computed prediction (batch kernels). Counted as
  /// a prediction — the batch kernel did run the classifier's decision
  /// procedure, just not through Predict(). Thread-safe.
  void InsertPrediction(int id, uint64_t pair_key, bool value) const;

  /// Uncached score (for baselines and diagnostics).
  double Score(int id, const std::vector<Value>& a,
               const std::vector<Value>& b) const {
    return classifiers_[id]->Score(a, b);
  }

  uint64_t num_predictions() const { return num_predictions_.load(); }
  uint64_t num_cache_hits() const { return num_cache_hits_.load(); }
  void ResetStats();
  void ClearCache();

 private:
  std::vector<std::unique_ptr<MlClassifier>> classifiers_;
  std::unordered_map<std::string, int> by_name_;

  mutable PredictionCache cache_;
  mutable std::atomic<uint64_t> num_predictions_{0};
  mutable std::atomic<uint64_t> num_cache_hits_{0};
};

}  // namespace dcer

#endif  // DCER_ML_REGISTRY_H_
