#ifndef DCER_ML_REGISTRY_H_
#define DCER_ML_REGISTRY_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/classifier.h"

namespace dcer {

/// Holds the named ML classifiers referenced by MRLs (M1, M2, ...) and
/// memoizes their predictions. ML predicates are pure functions of their
/// attribute vectors, so the chase may ask about the same pair many times
/// (once per rule and superstep); the sharded cache makes repeats O(1) and
/// keeps parallel workers from serializing on one mutex.
class MlRegistry {
 public:
  MlRegistry() = default;

  MlRegistry(const MlRegistry&) = delete;
  MlRegistry& operator=(const MlRegistry&) = delete;

  /// Registers a classifier; returns its dense id. Names must be unique.
  int Register(std::unique_ptr<MlClassifier> classifier);

  /// Id of the classifier with this name, or -1.
  int Lookup(const std::string& name) const;

  size_t size() const { return classifiers_.size(); }
  const MlClassifier& classifier(int id) const { return *classifiers_[id]; }

  /// Cached boolean prediction of classifier `id` on (a, b).
  /// `pair_key` must uniquely identify (predicate instance, tuple pair);
  /// the chase passes hash(pred-signature, gid_a, gid_b).
  bool Predict(int id, uint64_t pair_key, const std::vector<Value>& a,
               const std::vector<Value>& b) const;

  /// Uncached score (for baselines and diagnostics).
  double Score(int id, const std::vector<Value>& a,
               const std::vector<Value>& b) const {
    return classifiers_[id]->Score(a, b);
  }

  uint64_t num_predictions() const { return num_predictions_.load(); }
  uint64_t num_cache_hits() const { return num_cache_hits_.load(); }
  void ResetStats();
  void ClearCache();

 private:
  static constexpr size_t kShards = 16;

  std::vector<std::unique_ptr<MlClassifier>> classifiers_;
  std::unordered_map<std::string, int> by_name_;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<uint64_t, bool> cache;
  };
  mutable Shard shards_[kShards];
  mutable std::atomic<uint64_t> num_predictions_{0};
  mutable std::atomic<uint64_t> num_cache_hits_{0};
};

}  // namespace dcer

#endif  // DCER_ML_REGISTRY_H_
