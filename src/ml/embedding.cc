#include "ml/embedding.h"

#include <cctype>
#include <cmath>
#include <string>

#include "common/hash.h"
#include "ml/simd.h"

namespace dcer {

Embedding EmbedText(std::string_view text, size_t dim, size_t min_n,
                    size_t max_n) {
  Embedding vec(dim, 0.0f);
  // Normalize: lowercase, collapse non-alphanumerics to a single boundary
  // marker so "X1 Carbon" and "X1-Carbon" share n-grams. The buffer is
  // per-thread scratch: embedding runs inside join leaves and index probes,
  // where a fresh allocation per call showed up in profiles.
  thread_local std::string norm;
  norm.clear();
  norm.reserve(text.size() + 2);
  norm += '^';
  bool last_sep = false;
  for (char c : text) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      norm += static_cast<char>(std::tolower(u));
      last_sep = false;
    } else if (!last_sep) {
      norm += ' ';
      last_sep = true;
    }
  }
  norm += '$';

  for (size_t n = min_n; n <= max_n; ++n) {
    if (norm.size() < n) break;
    for (size_t i = 0; i + n <= norm.size(); ++i) {
      uint64_t h = Fnv1a64(norm.data() + i, n, n);
      size_t bucket = h % dim;
      // Signed hashing reduces collision bias (feature-hashing trick).
      float sign = ((h >> 63) & 1) ? 1.0f : -1.0f;
      vec[bucket] += sign;
    }
  }

  double norm2 = 0;
  for (float v : vec) norm2 += static_cast<double>(v) * v;
  if (norm2 > 0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm2));
    for (float& v : vec) v *= inv;
  }
  return vec;
}

double Cosine(const Embedding& a, const Embedding& b) {
  if (a.size() != b.size()) return 0.0;
  // Blocked 4-accumulator dot product (simd.h): the AVX2 body performs the
  // same operations on the same four lanes, so the result is bit-identical
  // across dispatch levels. Embeddings are L2-normalized, so the dot IS the
  // cosine.
  return simd::DotBlockedF32(a.data(), b.data(), a.size());
}

}  // namespace dcer
