#ifndef DCER_ML_SIMD_H_
#define DCER_ML_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace dcer {
namespace simd {

/// Instruction-set tier of the similarity inner loops. Resolved once at
/// first use: `DCER_SIMD=0` in the environment forces the portable scalar
/// path; otherwise AVX2 is used when the CPU reports it
/// (__builtin_cpu_supports). Every kernel below is bit-identical across
/// tiers — the AVX2 bodies perform the same IEEE double operations in the
/// same order as the scalar bodies (and the set kernels are pure integer
/// work), so switching tiers can never change a similarity score.
enum class Level : int { kScalar = 0, kAvx2 = 1 };

/// The tier the kernels currently dispatch to.
Level ActiveLevel();

/// Human-readable tier name ("scalar" / "avx2") for logs and benches.
const char* LevelName(Level level);

/// Test hook: forces a tier (kernels trust the caller that the CPU supports
/// it), or re-resolves from the environment/CPU when `level` is negative.
/// Not thread-safe against concurrent kernel calls; tests only.
void SetLevelForTest(int level);

/// |A ∩ B| of two strictly ascending uint32 arrays (sets). The token-overlap
/// inner loop of the batched TokenJaccard kernel.
size_t IntersectCountU32(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb);

/// Multiset overlap Σ min(count_a, count_b) over two strictly ascending
/// uint64 key arrays with per-key multiplicities (the q-gram count sketches
/// of ml/profile.h). The count-filter inner loop of the batched edit kernel.
uint64_t SharedMinCountU64(const uint64_t* ka, const uint32_t* ca, size_t na,
                           const uint64_t* kb, const uint32_t* cb, size_t nb);

/// Float dot product accumulated in doubles with the blocked 4-accumulator
/// order of ml/embedding.cc's Cosine: lane l sums the elements with index
/// ≡ l (mod 4), the tail goes to lane 0, and the result is
/// (s0 + s1) + (s2 + s3). The AVX2 body maps the four lanes onto one ymm of
/// doubles (no FMA — fusing would change the rounding), so both tiers emit
/// bit-identical doubles.
double DotBlockedF32(const float* a, const float* b, size_t n);

}  // namespace simd
}  // namespace dcer

#endif  // DCER_ML_SIMD_H_
