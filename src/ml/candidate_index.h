#ifndef DCER_ML_CANDIDATE_INDEX_H_
#define DCER_ML_CANDIDATE_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ml/profile.h"
#include "relational/value.h"

namespace dcer {

/// How (whether) a classifier can turn itself from a pairwise post-filter
/// into a candidate generator:
///   kNone   — cannot prune; the join falls back to a full scan.
///   kExact  — Probe() returns a *sound superset* of the rows whose score
///             reaches the threshold. Safe by default.
///   kApprox — Probe() may miss true matches (LSH); only used when the
///             caller explicitly opts in (MatchOptions::ml_index_approx).
enum class CandidateIndexKind { kNone, kExact, kApprox };

/// Fills *out (cleared first) with the ML attribute values of `row`.
/// Decouples index construction from the chase's view/relation types.
using RowValuesFn = std::function<void(uint32_t row, std::vector<Value>*)>;

/// Pool intern id of `row`'s ML-side text (ProfileStore::kNpos for a NULL
/// cell). Only installed when the side is a single string attribute — the
/// shape whose ConcatValueText equals the pool string byte for byte.
using RowInternFn = std::function<uint32_t(uint32_t row)>;

/// Optional precomputed-profile backing for an index build: when present,
/// build and probe read token ids / q-gram sketches / lengths straight from
/// the store instead of re-tokenizing row text. Probe results are identical
/// either way (same candidate sets, not merely equivalent supersets), so
/// enabling profiles can never perturb join counters or Γ.
struct ProfileSource {
  const ProfileStore* store = nullptr;
  RowInternFn intern_of;
};

/// Similarity index over one side of an ML predicate: built once per
/// (classifier, relation fragment, attribute vector), probed with the other
/// side's values. Probe returns candidate rows sorted ascending, each row at
/// most once. Exact indices guarantee every row scoring >= the classifier's
/// threshold is returned; the join still verifies each survivor with the
/// real classifier, so false positives only cost time, never correctness.
///
/// Thread-safety: building and Add() mutate; Probe() is const and safe to
/// call concurrently (implementations keep scratch in thread-local storage).
/// The chase prewarms indices before fanning enumeration out to shards,
/// mirroring DatasetIndex::EnsureBuilt.
class MlCandidateIndex {
 public:
  virtual ~MlCandidateIndex() = default;

  /// True when Probe is a sound superset generator at the build threshold.
  virtual bool sound() const { return true; }

  /// Appends the candidate rows for `query` (the other side's attribute
  /// values) into *out. *out is cleared first; rows come back sorted.
  virtual void Probe(const std::vector<Value>& query,
                     std::vector<uint32_t>* out) const = 0;

  /// Registers a newly appended row (incremental ΔD, DMatch supersteps).
  virtual void Add(uint32_t row, const std::vector<Value>& values) = 0;

  size_t num_rows() const { return num_rows_; }

 protected:
  size_t num_rows_ = 0;
};

/// Concatenation of an ML predicate side's values into the exact text the
/// string classifiers score — shared between classifiers and their indices
/// so the pruning bound and the verified score never diverge.
std::string ConcatValueText(const std::vector<Value>& values);

/// Zero-copy variant of ConcatValueText: when the side is a single non-NULL
/// string value (the common ML shape), returns a view straight into the
/// dataset's interning arena; otherwise materializes into *scratch and views
/// that. The bytes are identical to ConcatValueText in every case.
std::string_view ConcatValueView(const std::vector<Value>& values,
                                 std::string* scratch);

/// PPJoin-style token index for TokenJaccardClassifier: whitespace tokens
/// (case-insensitive, set semantics), global rare-first token order, prefix
/// filtering (a row is indexed only under the first |x| - ceil(t*|x|) + 1 of
/// its ordered tokens) and length filtering (t*|y| <= |x| <= |y|/t).
class TokenJaccardIndex : public MlCandidateIndex {
 public:
  TokenJaccardIndex(double threshold, const std::vector<uint32_t>& rows,
                    const RowValuesFn& fill,
                    const ProfileSource* profiles = nullptr);

  void Probe(const std::vector<Value>& query,
             std::vector<uint32_t>* out) const override;
  void Add(uint32_t row, const std::vector<Value>& values) override;

 private:
  /// Rank sentinel: the token is in the (shared) dictionary but appears in
  /// no indexed row — the probe treats it exactly like an unseen token.
  static constexpr uint32_t kUnranked = 0xffffffffu;

  struct RowEntry {
    uint32_t row;
    uint32_t num_tokens;
  };

  void IndexRow(uint32_t row, const std::vector<uint32_t>& token_ids);
  size_t PrefixLength(size_t set_size) const;
  uint32_t RankOf(uint32_t token_id) const {
    return token_id < rank_of_token_.size() ? rank_of_token_[token_id]
                                            : kUnranked;
  }
  // Token ids + total unique-token count of a probe query; profile-backed
  // when the query is one interned, profiled string.
  void QueryTokenIds(const std::vector<Value>& query,
                     std::vector<uint32_t>* ids, size_t* ny) const;

  double threshold_;
  // Token interning. With a ProfileSource the dictionary is the store's
  // (ids shared dataset-wide, token_ids_ unused); otherwise it is private.
  // Either way the global prefix order is rare-first by (build-time df,
  // token text) and frozen at build; tokens first ranked by later Adds are
  // appended after every build token, so already-indexed prefixes stay valid.
  const ProfileStore* profiles_ = nullptr;
  RowInternFn intern_of_;
  std::unordered_map<std::string, uint32_t> token_ids_;
  std::vector<uint32_t> rank_of_token_;  // token id -> position in the order
  uint32_t next_rank_ = 0;               // ranks handed out so far
  // token id -> rows indexed under it (prefix positions only).
  std::unordered_map<uint32_t, std::vector<RowEntry>> postings_;
  std::vector<uint32_t> empty_rows_;  // rows with no tokens (score 1 vs empty)
};

/// Q-gram index for EditSimilarityClassifier. Edit similarity
/// 1 - d/max(|a|,|b|) >= t bounds the distance by k = floor((1-t)*max), so
/// candidates must (i) have length in [ceil(t*|a|), floor(|a|/t)] and
/// (ii) share at least max(|a|,|b|) - q + 1 - k*q q-grams with the query
/// (each edit destroys at most q grams). Rows failing either are pruned.
class QGramEditIndex : public MlCandidateIndex {
 public:
  QGramEditIndex(double threshold, const std::vector<uint32_t>& rows,
                 const RowValuesFn& fill, size_t q = 2,
                 const ProfileSource* profiles = nullptr);

  void Probe(const std::vector<Value>& query,
             std::vector<uint32_t>* out) const override;
  void Add(uint32_t row, const std::vector<Value>& values) override;

 private:
  struct Posting {
    uint32_t row;
    uint32_t count;  // multiplicity of the gram in the row's text
  };

  void IndexRow(uint32_t row, std::string_view text);
  // Profile-backed IndexRow: the store already holds the row's sorted RLE
  // gram sketch, so indexing is a copy instead of a hash-sort pass.
  void IndexRowProfile(uint32_t row, const ProfileStore::Profile& p);
  bool TryIndexRowProfile(uint32_t row);

  double threshold_;
  size_t q_;
  const ProfileStore* profiles_ = nullptr;
  RowInternFn intern_of_;
  std::unordered_map<uint64_t, std::vector<Posting>> postings_;
  // (length, row) sorted by length: the probe walks the feasible window.
  std::vector<std::pair<uint32_t, uint32_t>> rows_by_len_;
  bool len_sorted_ = true;
  // Largest indexed row id, maintained on insert so a probe can size its
  // stamp counter without rescanning rows_by_len_ (probes are O(n) in the
  // dataset otherwise — quadratic across a self-join's probe loop).
  uint32_t max_row_ = 0;
};

/// Banded SimHash index for EmbeddingCosineClassifier: each row's embedding
/// is signed against a fixed pseudo-random hyperplane set (seeded, so builds
/// are deterministic), the sign bits are split into bands, and rows are
/// bucketed per band. A probe returns every row sharing at least one full
/// band with the query. NOT sound (sound() == false): two vectors above the
/// cosine threshold can disagree on every band, so this index only runs when
/// the caller opted into approximate candidate generation.
class CosineLshIndex : public MlCandidateIndex {
 public:
  CosineLshIndex(double threshold, size_t dim,
                 const std::vector<uint32_t>& rows, const RowValuesFn& fill,
                 size_t bands = 16, size_t bits_per_band = 4);

  bool sound() const override { return false; }
  void Probe(const std::vector<Value>& query,
             std::vector<uint32_t>* out) const override;
  void Add(uint32_t row, const std::vector<Value>& values) override;

 private:
  uint64_t Signature(const std::vector<Value>& values) const;

  size_t dim_;
  size_t bands_;
  size_t bits_per_band_;
  std::vector<float> planes_;  // bands*bits_per_band rows of dim floats
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> buckets_;
};

}  // namespace dcer

#endif  // DCER_ML_CANDIDATE_INDEX_H_
