#include "ml/candidate_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/hash.h"
#include "common/rng.h"
#include "ml/embedding.h"

namespace dcer {

namespace {

// Epsilon used when converting real-valued similarity bounds to integer
// set-size / length / overlap bounds. Always applied in the direction that
// widens the candidate set, so floating-point rounding can only add false
// positives (filtered by the classifier), never drop a true match.
constexpr double kBoundEps = 1e-9;

size_t CeilBound(double x) {
  double c = std::ceil(x - kBoundEps);
  return c <= 0 ? 0 : static_cast<size_t>(c);
}

size_t FloorBound(double x) {
  double f = std::floor(x + kBoundEps);
  return f <= 0 ? 0 : static_cast<size_t>(f);
}

// Lowercased unique whitespace tokens of `text` — exactly TokenJaccard's
// token-set semantics (see ml/similarity.cc).
std::vector<std::string> UniqueTokensLower(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) {
      std::string tok(text.substr(start, i - start));
      for (char& c : tok) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      tokens.push_back(std::move(tok));
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

void SortUniqueRows(std::vector<uint32_t>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

}  // namespace

std::string ConcatValueText(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    if (!out.empty()) out += ' ';
    if (!v.is_null()) out += v.ToString();
  }
  return out;
}

std::string_view ConcatValueView(const std::vector<Value>& values,
                                 std::string* scratch) {
  // One non-NULL string value — the dominant ML-side shape — needs no
  // concatenation at all: hand back the columnar arena view, zero-copy.
  if (values.size() == 1 && values[0].type() == ValueType::kString) {
    return values[0].AsString();
  }
  *scratch = ConcatValueText(values);
  return *scratch;
}

// --- TokenJaccardIndex ------------------------------------------------------

TokenJaccardIndex::TokenJaccardIndex(double threshold,
                                     const std::vector<uint32_t>& rows,
                                     const RowValuesFn& fill)
    : threshold_(threshold) {
  // Pass 1: tokenize every row, intern tokens, count document frequency.
  std::vector<Value> values;
  std::string scratch;
  std::vector<std::vector<uint32_t>> row_tokens(rows.size());
  std::vector<uint32_t> df;
  std::vector<std::string> token_text;
  for (size_t r = 0; r < rows.size(); ++r) {
    fill(rows[r], &values);
    for (std::string& tok : UniqueTokensLower(ConcatValueView(values,
                                                              &scratch))) {
      auto [it, inserted] =
          token_ids_.emplace(std::move(tok), static_cast<uint32_t>(df.size()));
      if (inserted) {
        df.push_back(0);
        token_text.push_back(it->first);
      }
      ++df[it->second];
      row_tokens[r].push_back(it->second);
    }
  }
  // Global prefix order, rare-first with the token text as a deterministic
  // tie-break. Frozen here: tokens first seen by later Adds are appended
  // after every build token, which keeps already-indexed prefixes valid
  // (the prefix-filter theorem holds for any one fixed total order).
  std::vector<uint32_t> order(df.size());
  for (uint32_t t = 0; t < order.size(); ++t) order[t] = t;
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    if (df[x] != df[y]) return df[x] < df[y];
    return token_text[x] < token_text[y];
  });
  rank_of_token_.resize(df.size());
  for (uint32_t r = 0; r < order.size(); ++r) rank_of_token_[order[r]] = r;

  // Pass 2: index each row under its prefix tokens.
  for (size_t r = 0; r < rows.size(); ++r) {
    IndexRow(rows[r], row_tokens[r]);
  }
  num_rows_ = rows.size();
}

size_t TokenJaccardIndex::PrefixLength(size_t set_size) const {
  if (set_size == 0) return 0;
  size_t keep = CeilBound(threshold_ * static_cast<double>(set_size));
  if (keep > set_size) keep = set_size;
  return set_size - keep + 1;
}

void TokenJaccardIndex::IndexRow(uint32_t row,
                                 const std::vector<uint32_t>& token_ids) {
  if (token_ids.empty()) {
    empty_rows_.push_back(row);
    return;
  }
  std::vector<uint32_t> ordered = token_ids;
  std::sort(ordered.begin(), ordered.end(), [&](uint32_t x, uint32_t y) {
    return rank_of_token_[x] < rank_of_token_[y];
  });
  const size_t prefix = PrefixLength(ordered.size());
  const uint32_t size = static_cast<uint32_t>(ordered.size());
  for (size_t i = 0; i < prefix; ++i) {
    postings_[ordered[i]].push_back({row, size});
  }
}

void TokenJaccardIndex::Add(uint32_t row, const std::vector<Value>& values) {
  std::vector<uint32_t> ids;
  std::string scratch;
  for (std::string& tok : UniqueTokensLower(ConcatValueView(values,
                                                            &scratch))) {
    auto [it, inserted] = token_ids_.emplace(
        std::move(tok), static_cast<uint32_t>(rank_of_token_.size()));
    if (inserted) {
      // Unseen token: appended after every existing rank.
      rank_of_token_.push_back(static_cast<uint32_t>(rank_of_token_.size()));
    }
    ids.push_back(it->second);
  }
  IndexRow(row, ids);
  ++num_rows_;
}

void TokenJaccardIndex::Probe(const std::vector<Value>& query,
                              std::vector<uint32_t>* out) const {
  out->clear();
  std::string scratch;
  std::vector<std::string> tokens =
      UniqueTokensLower(ConcatValueView(query, &scratch));
  if (tokens.empty()) {
    // Two empty token sets score 1.0 >= threshold; empty-vs-nonempty is 0.
    *out = empty_rows_;
    SortUniqueRows(out);
    return;
  }
  const size_t ny = tokens.size();
  // Known tokens sorted by the frozen global order; query-only tokens rank
  // after every indexed token (they cannot hit a posting list, and placing
  // them last keeps the shared order assumption of the prefix filter while
  // spending the query's prefix positions on tokens that can match).
  std::vector<uint32_t> known;
  for (const std::string& tok : tokens) {
    auto it = token_ids_.find(tok);
    if (it != token_ids_.end()) known.push_back(it->second);
  }
  std::sort(known.begin(), known.end(), [&](uint32_t x, uint32_t y) {
    return rank_of_token_[x] < rank_of_token_[y];
  });
  const size_t prefix = PrefixLength(ny);
  const size_t known_prefix = std::min(prefix, known.size());

  const size_t min_size = CeilBound(threshold_ * static_cast<double>(ny));
  const size_t max_size = threshold_ > 0
                              ? FloorBound(static_cast<double>(ny) / threshold_)
                              : SIZE_MAX;
  for (size_t i = 0; i < known_prefix; ++i) {
    auto it = postings_.find(known[i]);
    if (it == postings_.end()) continue;
    for (const RowEntry& e : it->second) {
      if (e.num_tokens < min_size || e.num_tokens > max_size) continue;
      out->push_back(e.row);
    }
  }
  SortUniqueRows(out);
}

// --- QGramEditIndex ---------------------------------------------------------

namespace {

// Sorted q-gram hash multiset of `text` (empty when |text| < q).
void GramsOf(std::string_view text, size_t q, std::vector<uint64_t>* out) {
  out->clear();
  if (text.size() < q) return;
  for (size_t i = 0; i + q <= text.size(); ++i) {
    out->push_back(Fnv1a64(text.data() + i, q, q));
  }
  std::sort(out->begin(), out->end());
}

// Per-thread row-keyed counter with stamp invalidation: clearing between
// probes is O(touched rows), and concurrent probes from enumeration shards
// never share state.
struct RowCounter {
  std::vector<uint32_t> stamp;
  std::vector<uint32_t> count;
  uint32_t cur = 0;

  void Begin(size_t max_row) {
    if (++cur == 0) {  // stamp wrapped: invalidate everything
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
    if (stamp.size() <= max_row) {
      stamp.resize(max_row + 1, 0);
      count.resize(max_row + 1, 0);
    }
  }
  void Bump(uint32_t row, uint32_t by) {
    if (stamp[row] != cur) {
      stamp[row] = cur;
      count[row] = 0;
    }
    count[row] += by;
  }
  uint32_t Get(uint32_t row) const {
    return (row < stamp.size() && stamp[row] == cur) ? count[row] : 0;
  }
};

thread_local RowCounter g_row_counter;

}  // namespace

QGramEditIndex::QGramEditIndex(double threshold,
                               const std::vector<uint32_t>& rows,
                               const RowValuesFn& fill, size_t q)
    : threshold_(threshold), q_(q) {
  std::vector<Value> values;
  std::string scratch;
  for (uint32_t row : rows) {
    fill(row, &values);
    IndexRow(row, ConcatValueView(values, &scratch));
  }
  std::sort(rows_by_len_.begin(), rows_by_len_.end());
  len_sorted_ = true;
  num_rows_ = rows.size();
}

void QGramEditIndex::IndexRow(uint32_t row, std::string_view text) {
  rows_by_len_.push_back({static_cast<uint32_t>(text.size()), row});
  thread_local std::vector<uint64_t> grams;
  GramsOf(text, q_, &grams);
  for (size_t i = 0; i < grams.size();) {
    size_t j = i;
    while (j < grams.size() && grams[j] == grams[i]) ++j;
    postings_[grams[i]].push_back({row, static_cast<uint32_t>(j - i)});
    i = j;
  }
}

void QGramEditIndex::Add(uint32_t row, const std::vector<Value>& values) {
  std::string scratch;
  IndexRow(row, ConcatValueView(values, &scratch));
  // Keep the length ordering; appended batches are small, so the insertion
  // sort step stays cheap relative to the chase work that follows.
  if (rows_by_len_.size() >= 2 &&
      rows_by_len_[rows_by_len_.size() - 2] > rows_by_len_.back()) {
    auto last = rows_by_len_.back();
    rows_by_len_.pop_back();
    rows_by_len_.insert(
        std::upper_bound(rows_by_len_.begin(), rows_by_len_.end(), last),
        last);
  }
  ++num_rows_;
}

void QGramEditIndex::Probe(const std::vector<Value>& query,
                           std::vector<uint32_t>* out) const {
  out->clear();
  std::string scratch;
  const std::string_view text = ConcatValueView(query, &scratch);
  const size_t la = text.size();
  const size_t lb_min = CeilBound(threshold_ * static_cast<double>(la));
  const size_t lb_max =
      threshold_ > 0 ? FloorBound(static_cast<double>(la) / threshold_) : 0;

  // Count shared q-grams per row: sum of min(multiplicities), the exact
  // multiset overlap the count-filter bound is stated over.
  uint32_t max_row = 0;
  for (const auto& [len, row] : rows_by_len_) max_row = std::max(max_row, row);
  g_row_counter.Begin(max_row);
  thread_local std::vector<uint64_t> grams;
  GramsOf(text, q_, &grams);
  for (size_t i = 0; i < grams.size();) {
    size_t j = i;
    while (j < grams.size() && grams[j] == grams[i]) ++j;
    const uint32_t qcount = static_cast<uint32_t>(j - i);
    auto it = postings_.find(grams[i]);
    if (it != postings_.end()) {
      for (const Posting& p : it->second) {
        g_row_counter.Bump(p.row, std::min(qcount, p.count));
      }
    }
    i = j;
  }

  // Walk the feasible length window; the q-gram count filter prunes inside
  // it. bound <= 0 means the count filter is vacuous for that length pair
  // (short strings), so the row stays a candidate on length alone.
  auto lo = std::lower_bound(
      rows_by_len_.begin(), rows_by_len_.end(),
      std::pair<uint32_t, uint32_t>{static_cast<uint32_t>(lb_min), 0});
  for (auto it = lo; it != rows_by_len_.end() && it->first <= lb_max; ++it) {
    const size_t lb = it->first;
    const size_t longer = std::max(la, lb);
    const size_t k =
        FloorBound((1.0 - threshold_) * static_cast<double>(longer));
    const int64_t bound = static_cast<int64_t>(longer) -
                          static_cast<int64_t>(q_) + 1 -
                          static_cast<int64_t>(k * q_);
    if (bound > 0 &&
        g_row_counter.Get(it->second) < static_cast<uint64_t>(bound)) {
      continue;
    }
    out->push_back(it->second);
  }
  std::sort(out->begin(), out->end());
}

// --- CosineLshIndex ---------------------------------------------------------

CosineLshIndex::CosineLshIndex(double threshold, size_t dim,
                               const std::vector<uint32_t>& rows,
                               const RowValuesFn& fill, size_t bands,
                               size_t bits_per_band)
    : dim_(dim), bands_(bands), bits_per_band_(bits_per_band) {
  (void)threshold;  // banding parameters, not the threshold, set the recall
  // Fixed seeded hyperplanes: builds (and therefore probes) are fully
  // deterministic across runs, workers and thread counts.
  Rng rng(0x5eedc0de);
  planes_.resize(bands_ * bits_per_band_ * dim_);
  for (float& p : planes_) {
    p = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  buckets_.resize(bands_);
  std::vector<Value> values;
  for (uint32_t row : rows) {
    fill(row, &values);
    Add(row, values);
  }
  num_rows_ = rows.size();
}

uint64_t CosineLshIndex::Signature(const std::vector<Value>& values) const {
  std::string scratch;
  const Embedding e = EmbedText(ConcatValueView(values, &scratch), dim_);
  uint64_t sig = 0;
  const size_t nbits = bands_ * bits_per_band_;
  for (size_t b = 0; b < nbits; ++b) {
    const float* plane = planes_.data() + b * dim_;
    double dot = 0;
    for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(plane[i]) * e[i];
    if (dot >= 0) sig |= uint64_t{1} << b;
  }
  return sig;
}

void CosineLshIndex::Add(uint32_t row, const std::vector<Value>& values) {
  const uint64_t sig = Signature(values);
  const uint64_t band_mask = (uint64_t{1} << bits_per_band_) - 1;
  for (size_t band = 0; band < bands_; ++band) {
    const uint64_t key = (sig >> (band * bits_per_band_)) & band_mask;
    buckets_[band][key].push_back(row);
  }
  ++num_rows_;
}

void CosineLshIndex::Probe(const std::vector<Value>& query,
                           std::vector<uint32_t>* out) const {
  out->clear();
  const uint64_t sig = Signature(query);
  const uint64_t band_mask = (uint64_t{1} << bits_per_band_) - 1;
  for (size_t band = 0; band < bands_; ++band) {
    const uint64_t key = (sig >> (band * bits_per_band_)) & band_mask;
    auto it = buckets_[band].find(key);
    if (it == buckets_[band].end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  SortUniqueRows(out);
}

}  // namespace dcer
