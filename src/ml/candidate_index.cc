#include "ml/candidate_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/hash.h"
#include "common/rng.h"
#include "ml/embedding.h"
#include "ml/similarity.h"

namespace dcer {

namespace {

// Epsilon used when converting real-valued similarity bounds to integer
// set-size / length / overlap bounds. Always applied in the direction that
// widens the candidate set, so floating-point rounding can only add false
// positives (filtered by the classifier), never drop a true match.
constexpr double kBoundEps = 1e-9;

size_t CeilBound(double x) {
  double c = std::ceil(x - kBoundEps);
  return c <= 0 ? 0 : static_cast<size_t>(c);
}

size_t FloorBound(double x) {
  double f = std::floor(x + kBoundEps);
  return f <= 0 ? 0 : static_cast<size_t>(f);
}

using ml_text::UniqueTokensLower;

void SortUniqueRows(std::vector<uint32_t>* rows) {
  std::sort(rows->begin(), rows->end());
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

}  // namespace

std::string ConcatValueText(const std::vector<Value>& values) {
  std::string out;
  for (const Value& v : values) {
    if (!out.empty()) out += ' ';
    if (!v.is_null()) out += v.ToString();
  }
  return out;
}

std::string_view ConcatValueView(const std::vector<Value>& values,
                                 std::string* scratch) {
  // One non-NULL string value — the dominant ML-side shape — needs no
  // concatenation at all: hand back the columnar arena view, zero-copy.
  if (values.size() == 1 && values[0].type() == ValueType::kString) {
    return values[0].AsString();
  }
  *scratch = ConcatValueText(values);
  return *scratch;
}

// --- TokenJaccardIndex ------------------------------------------------------

TokenJaccardIndex::TokenJaccardIndex(double threshold,
                                     const std::vector<uint32_t>& rows,
                                     const RowValuesFn& fill,
                                     const ProfileSource* profiles)
    : threshold_(threshold) {
  if (profiles != nullptr && profiles->store != nullptr &&
      profiles->intern_of) {
    profiles_ = profiles->store;
    intern_of_ = profiles->intern_of;
  }
  // Pass 1: collect every row's token-id set and count document frequency.
  // Profiled: the sets come straight from the store's arena (no tokenizing,
  // no hashing); df is counted over the store's shared dictionary ids, and
  // ids absent from every indexed row keep df 0.
  std::vector<std::vector<uint32_t>> row_tokens(rows.size());
  std::vector<uint32_t> df;
  if (profiles_ != nullptr) {
    df.assign(profiles_->num_tokens(), 0);
    for (size_t r = 0; r < rows.size(); ++r) {
      const uint32_t id = intern_of_(rows[r]);
      const ProfileStore::Profile* p =
          id == ProfileStore::kNpos ? nullptr : profiles_->Find(id);
      if (p == nullptr) continue;
      const uint32_t* toks = profiles_->tokens(*p);
      row_tokens[r].assign(toks, toks + p->tok_count);
      for (uint32_t t : row_tokens[r]) ++df[t];
    }
  } else {
    std::vector<Value> values;
    std::string scratch;
    for (size_t r = 0; r < rows.size(); ++r) {
      fill(rows[r], &values);
      for (std::string& tok : UniqueTokensLower(ConcatValueView(values,
                                                                &scratch))) {
        auto [it, inserted] = token_ids_.emplace(
            std::move(tok), static_cast<uint32_t>(df.size()));
        if (inserted) df.push_back(0);
        ++df[it->second];
        row_tokens[r].push_back(it->second);
      }
    }
  }
  // Global prefix order, rare-first with the token text as a deterministic
  // tie-break. Frozen here: tokens first seen by later Adds are appended
  // after every build token, which keeps already-indexed prefixes valid
  // (the prefix-filter theorem holds for any one fixed total order).
  // Dictionary tokens with df == 0 (profiled mode shares the dataset-wide
  // dictionary) get no rank at all: like unseen text, they can never match a
  // posting list, so ranking only df >= 1 tokens keeps the order — and hence
  // every probe's candidate set — identical to the private-dictionary build.
  std::vector<uint32_t> order;
  order.reserve(df.size());
  for (uint32_t t = 0; t < df.size(); ++t) {
    if (df[t] > 0) order.push_back(t);
  }
  std::vector<std::string_view> token_text(df.size());
  if (profiles_ != nullptr) {
    for (uint32_t t : order) token_text[t] = profiles_->token_text(t);
  } else {
    for (const auto& [tok, id] : token_ids_) token_text[id] = tok;
  }
  std::sort(order.begin(), order.end(), [&](uint32_t x, uint32_t y) {
    if (df[x] != df[y]) return df[x] < df[y];
    return token_text[x] < token_text[y];
  });
  rank_of_token_.assign(df.size(), kUnranked);
  for (uint32_t r = 0; r < order.size(); ++r) rank_of_token_[order[r]] = r;
  next_rank_ = static_cast<uint32_t>(order.size());

  // Pass 2: index each row under its prefix tokens.
  for (size_t r = 0; r < rows.size(); ++r) {
    IndexRow(rows[r], row_tokens[r]);
  }
  num_rows_ = rows.size();
}

size_t TokenJaccardIndex::PrefixLength(size_t set_size) const {
  if (set_size == 0) return 0;
  size_t keep = CeilBound(threshold_ * static_cast<double>(set_size));
  if (keep > set_size) keep = set_size;
  return set_size - keep + 1;
}

void TokenJaccardIndex::IndexRow(uint32_t row,
                                 const std::vector<uint32_t>& token_ids) {
  if (token_ids.empty()) {
    empty_rows_.push_back(row);
    return;
  }
  std::vector<uint32_t> ordered = token_ids;
  std::sort(ordered.begin(), ordered.end(), [&](uint32_t x, uint32_t y) {
    return RankOf(x) < RankOf(y);
  });
  const size_t prefix = PrefixLength(ordered.size());
  const uint32_t size = static_cast<uint32_t>(ordered.size());
  for (size_t i = 0; i < prefix; ++i) {
    postings_[ordered[i]].push_back({row, size});
  }
}

void TokenJaccardIndex::Add(uint32_t row, const std::vector<Value>& values) {
  std::vector<uint32_t> ids;
  if (profiles_ != nullptr) {
    const uint32_t id = intern_of_(row);
    const ProfileStore::Profile* p =
        id == ProfileStore::kNpos ? nullptr : profiles_->Find(id);
    if (p != nullptr) {
      const uint32_t* toks = profiles_->tokens(*p);
      ids.assign(toks, toks + p->tok_count);
    }
    // The shared dictionary may have grown since the build; widen the rank
    // table (new ids unranked) and append ranks for this row's new tokens.
    if (rank_of_token_.size() < profiles_->num_tokens()) {
      rank_of_token_.resize(profiles_->num_tokens(), kUnranked);
    }
    for (uint32_t t : ids) {
      if (rank_of_token_[t] == kUnranked) rank_of_token_[t] = next_rank_++;
    }
  } else {
    std::string scratch;
    for (std::string& tok : UniqueTokensLower(ConcatValueView(values,
                                                              &scratch))) {
      auto [it, inserted] = token_ids_.emplace(
          std::move(tok), static_cast<uint32_t>(rank_of_token_.size()));
      if (inserted) {
        // Unseen token: appended after every existing rank.
        rank_of_token_.push_back(next_rank_++);
      }
      ids.push_back(it->second);
    }
  }
  IndexRow(row, ids);
  ++num_rows_;
}

void TokenJaccardIndex::QueryTokenIds(const std::vector<Value>& query,
                                      std::vector<uint32_t>* ids,
                                      size_t* ny) const {
  ids->clear();
  if (profiles_ != nullptr && query.size() == 1 &&
      query[0].type() == ValueType::kString) {
    // Interned probe: its token-id set is already in the store's arena —
    // the per-candidate re-tokenization this loop used to pay is gone even
    // on the scalar path.
    const uint32_t iid = query[0].intern_id();
    const ProfileStore::Profile* p =
        iid == ProfileStore::kNpos ? nullptr : profiles_->Find(iid);
    if (p != nullptr) {
      const uint32_t* toks = profiles_->tokens(*p);
      ids->assign(toks, toks + p->tok_count);
      *ny = p->tok_count;
      return;
    }
  }
  std::string scratch;
  const std::vector<std::string> tokens =
      UniqueTokensLower(ConcatValueView(query, &scratch));
  *ny = tokens.size();
  for (const std::string& tok : tokens) {
    if (profiles_ != nullptr) {
      const uint32_t tid = profiles_->FindToken(tok);
      if (tid != StringPool::kNpos) ids->push_back(tid);
    } else {
      auto it = token_ids_.find(tok);
      if (it != token_ids_.end()) ids->push_back(it->second);
    }
  }
}

void TokenJaccardIndex::Probe(const std::vector<Value>& query,
                              std::vector<uint32_t>* out) const {
  out->clear();
  thread_local std::vector<uint32_t> qids;
  size_t ny = 0;
  QueryTokenIds(query, &qids, &ny);
  if (ny == 0) {
    // Two empty token sets score 1.0 >= threshold; empty-vs-nonempty is 0.
    *out = empty_rows_;
    SortUniqueRows(out);
    return;
  }
  // Known (ranked) tokens sorted by the frozen global order; query-only
  // tokens — unseen text and df-0 dictionary ids alike — rank after every
  // indexed token (they cannot hit a posting list, and placing them last
  // keeps the shared order assumption of the prefix filter while spending
  // the query's prefix positions on tokens that can match).
  thread_local std::vector<uint32_t> known;
  known.clear();
  for (uint32_t t : qids) {
    if (RankOf(t) != kUnranked) known.push_back(t);
  }
  std::sort(known.begin(), known.end(), [&](uint32_t x, uint32_t y) {
    return RankOf(x) < RankOf(y);
  });
  const size_t prefix = PrefixLength(ny);
  const size_t known_prefix = std::min(prefix, known.size());

  const size_t min_size = CeilBound(threshold_ * static_cast<double>(ny));
  const size_t max_size = threshold_ > 0
                              ? FloorBound(static_cast<double>(ny) / threshold_)
                              : SIZE_MAX;
  for (size_t i = 0; i < known_prefix; ++i) {
    auto it = postings_.find(known[i]);
    if (it == postings_.end()) continue;
    for (const RowEntry& e : it->second) {
      if (e.num_tokens < min_size || e.num_tokens > max_size) continue;
      out->push_back(e.row);
    }
  }
  SortUniqueRows(out);
}

// --- QGramEditIndex ---------------------------------------------------------

namespace {

// Sorted q-gram hash multiset of `text` (empty when |text| < q).
void GramsOf(std::string_view text, size_t q, std::vector<uint64_t>* out) {
  out->clear();
  if (text.size() < q) return;
  for (size_t i = 0; i + q <= text.size(); ++i) {
    out->push_back(Fnv1a64(text.data() + i, q, q));
  }
  std::sort(out->begin(), out->end());
}

// Per-thread row-keyed counter with stamp invalidation: clearing between
// probes is O(touched rows), and concurrent probes from enumeration shards
// never share state.
struct RowCounter {
  std::vector<uint32_t> stamp;
  std::vector<uint32_t> count;
  uint32_t cur = 0;

  void Begin(size_t max_row) {
    if (++cur == 0) {  // stamp wrapped: invalidate everything
      std::fill(stamp.begin(), stamp.end(), 0);
      cur = 1;
    }
    if (stamp.size() <= max_row) {
      stamp.resize(max_row + 1, 0);
      count.resize(max_row + 1, 0);
    }
  }
  void Bump(uint32_t row, uint32_t by) {
    if (stamp[row] != cur) {
      stamp[row] = cur;
      count[row] = 0;
    }
    count[row] += by;
  }
  uint32_t Get(uint32_t row) const {
    return (row < stamp.size() && stamp[row] == cur) ? count[row] : 0;
  }
};

thread_local RowCounter g_row_counter;

}  // namespace

QGramEditIndex::QGramEditIndex(double threshold,
                               const std::vector<uint32_t>& rows,
                               const RowValuesFn& fill, size_t q,
                               const ProfileSource* profiles)
    : threshold_(threshold), q_(q) {
  if (profiles != nullptr && profiles->store != nullptr &&
      profiles->intern_of && profiles->store->q() == q) {
    profiles_ = profiles->store;
    intern_of_ = profiles->intern_of;
  }
  std::vector<Value> values;
  std::string scratch;
  for (uint32_t row : rows) {
    if (profiles_ != nullptr && TryIndexRowProfile(row)) continue;
    fill(row, &values);
    IndexRow(row, ConcatValueView(values, &scratch));
  }
  std::sort(rows_by_len_.begin(), rows_by_len_.end());
  len_sorted_ = true;
  num_rows_ = rows.size();
}

void QGramEditIndex::IndexRowProfile(uint32_t row,
                                     const ProfileStore::Profile& p) {
  rows_by_len_.push_back({p.byte_len, row});
  max_row_ = std::max(max_row_, row);
  const uint64_t* hashes = profiles_->gram_hashes(p);
  const uint32_t* counts = profiles_->gram_counts(p);
  for (uint32_t i = 0; i < p.gram_count; ++i) {
    postings_[hashes[i]].push_back({row, counts[i]});
  }
}

bool QGramEditIndex::TryIndexRowProfile(uint32_t row) {
  const uint32_t id = intern_of_(row);
  if (id == ProfileStore::kNpos) {
    // NULL cell renders as "": length 0, no grams.
    rows_by_len_.push_back({0, row});
    max_row_ = std::max(max_row_, row);
    return true;
  }
  const ProfileStore::Profile* p = profiles_->Find(id);
  if (p == nullptr) return false;
  IndexRowProfile(row, *p);
  return true;
}

void QGramEditIndex::IndexRow(uint32_t row, std::string_view text) {
  rows_by_len_.push_back({static_cast<uint32_t>(text.size()), row});
  max_row_ = std::max(max_row_, row);
  thread_local std::vector<uint64_t> grams;
  GramsOf(text, q_, &grams);
  for (size_t i = 0; i < grams.size();) {
    size_t j = i;
    while (j < grams.size() && grams[j] == grams[i]) ++j;
    postings_[grams[i]].push_back({row, static_cast<uint32_t>(j - i)});
    i = j;
  }
}

void QGramEditIndex::Add(uint32_t row, const std::vector<Value>& values) {
  if (profiles_ == nullptr || !TryIndexRowProfile(row)) {
    std::string scratch;
    IndexRow(row, ConcatValueView(values, &scratch));
  }
  // Keep the length ordering; appended batches are small, so the insertion
  // sort step stays cheap relative to the chase work that follows.
  if (rows_by_len_.size() >= 2 &&
      rows_by_len_[rows_by_len_.size() - 2] > rows_by_len_.back()) {
    auto last = rows_by_len_.back();
    rows_by_len_.pop_back();
    rows_by_len_.insert(
        std::upper_bound(rows_by_len_.begin(), rows_by_len_.end(), last),
        last);
  }
  ++num_rows_;
}

void QGramEditIndex::Probe(const std::vector<Value>& query,
                           std::vector<uint32_t>* out) const {
  out->clear();
  // Query gram groups (hash, multiplicity) and byte length: read from the
  // probe's profile when it is one interned string (no re-hashing in the
  // candidate loop), otherwise derived from the text exactly as before.
  thread_local std::vector<uint64_t> ghash_scratch;
  thread_local std::vector<uint32_t> gcount_scratch;
  const uint64_t* ghash = nullptr;
  const uint32_t* gcount = nullptr;
  size_t gn = 0;
  size_t la = 0;
  const ProfileStore::Profile* qp = nullptr;
  if (profiles_ != nullptr && query.size() == 1 &&
      query[0].type() == ValueType::kString) {
    const uint32_t iid = query[0].intern_id();
    qp = iid == ProfileStore::kNpos ? nullptr : profiles_->Find(iid);
  }
  if (qp != nullptr) {
    // Interned probe: its RLE gram sketch is already in the store's arena.
    la = qp->byte_len;
    ghash = profiles_->gram_hashes(*qp);
    gcount = profiles_->gram_counts(*qp);
    gn = qp->gram_count;
  } else {
    ghash_scratch.clear();
    gcount_scratch.clear();
    std::string scratch;
    const std::string_view text = ConcatValueView(query, &scratch);
    la = text.size();
    thread_local std::vector<uint64_t> grams;
    GramsOf(text, q_, &grams);
    for (size_t i = 0; i < grams.size();) {
      size_t j = i;
      while (j < grams.size() && grams[j] == grams[i]) ++j;
      ghash_scratch.push_back(grams[i]);
      gcount_scratch.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
    ghash = ghash_scratch.data();
    gcount = gcount_scratch.data();
    gn = ghash_scratch.size();
  }
  const size_t lb_min = CeilBound(threshold_ * static_cast<double>(la));
  const size_t lb_max =
      threshold_ > 0 ? FloorBound(static_cast<double>(la) / threshold_) : 0;

  // Count shared q-grams per row: sum of min(multiplicities), the exact
  // multiset overlap the count-filter bound is stated over.
  g_row_counter.Begin(max_row_);
  for (size_t g = 0; g < gn; ++g) {
    auto it = postings_.find(ghash[g]);
    if (it == postings_.end()) continue;
    const uint32_t qcount = gcount[g];
    for (const Posting& p : it->second) {
      g_row_counter.Bump(p.row, std::min(qcount, p.count));
    }
  }

  // Walk the feasible length window; the q-gram count filter prunes inside
  // it. bound <= 0 means the count filter is vacuous for that length pair
  // (short strings), so the row stays a candidate on length alone. k and
  // the bound depend only on the candidate length, and the walk is
  // length-sorted, so they are recomputed once per distinct length instead
  // of once per row.
  auto lo = std::lower_bound(
      rows_by_len_.begin(), rows_by_len_.end(),
      std::pair<uint32_t, uint32_t>{static_cast<uint32_t>(lb_min), 0});
  size_t cur_len = SIZE_MAX;
  int64_t bound = 0;
  for (auto it = lo; it != rows_by_len_.end() && it->first <= lb_max; ++it) {
    const size_t lb = it->first;
    if (lb != cur_len) {
      cur_len = lb;
      const size_t longer = std::max(la, lb);
      const size_t k =
          FloorBound((1.0 - threshold_) * static_cast<double>(longer));
      bound = static_cast<int64_t>(longer) - static_cast<int64_t>(q_) + 1 -
              static_cast<int64_t>(k * q_);
    }
    if (bound > 0 &&
        g_row_counter.Get(it->second) < static_cast<uint64_t>(bound)) {
      continue;
    }
    out->push_back(it->second);
  }
  std::sort(out->begin(), out->end());
}

// --- CosineLshIndex ---------------------------------------------------------

CosineLshIndex::CosineLshIndex(double threshold, size_t dim,
                               const std::vector<uint32_t>& rows,
                               const RowValuesFn& fill, size_t bands,
                               size_t bits_per_band)
    : dim_(dim), bands_(bands), bits_per_band_(bits_per_band) {
  (void)threshold;  // banding parameters, not the threshold, set the recall
  // Fixed seeded hyperplanes: builds (and therefore probes) are fully
  // deterministic across runs, workers and thread counts.
  Rng rng(0x5eedc0de);
  planes_.resize(bands_ * bits_per_band_ * dim_);
  for (float& p : planes_) {
    p = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  buckets_.resize(bands_);
  std::vector<Value> values;
  for (uint32_t row : rows) {
    fill(row, &values);
    Add(row, values);
  }
  num_rows_ = rows.size();
}

uint64_t CosineLshIndex::Signature(const std::vector<Value>& values) const {
  std::string scratch;
  const Embedding e = EmbedText(ConcatValueView(values, &scratch), dim_);
  uint64_t sig = 0;
  const size_t nbits = bands_ * bits_per_band_;
  for (size_t b = 0; b < nbits; ++b) {
    const float* plane = planes_.data() + b * dim_;
    double dot = 0;
    for (size_t i = 0; i < dim_; ++i) dot += static_cast<double>(plane[i]) * e[i];
    if (dot >= 0) sig |= uint64_t{1} << b;
  }
  return sig;
}

void CosineLshIndex::Add(uint32_t row, const std::vector<Value>& values) {
  const uint64_t sig = Signature(values);
  const uint64_t band_mask = (uint64_t{1} << bits_per_band_) - 1;
  for (size_t band = 0; band < bands_; ++band) {
    const uint64_t key = (sig >> (band * bits_per_band_)) & band_mask;
    buckets_[band][key].push_back(row);
  }
  ++num_rows_;
}

void CosineLshIndex::Probe(const std::vector<Value>& query,
                           std::vector<uint32_t>* out) const {
  out->clear();
  const uint64_t sig = Signature(query);
  const uint64_t band_mask = (uint64_t{1} << bits_per_band_) - 1;
  for (size_t band = 0; band < bands_; ++band) {
    const uint64_t key = (sig >> (band * bits_per_band_)) & band_mask;
    auto it = buckets_[band].find(key);
    if (it == buckets_[band].end()) continue;
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  SortUniqueRows(out);
}

}  // namespace dcer
