#include "ml/similarity.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/string_util.h"

namespace dcer {

namespace {

// Lowercases `s` into *buf and appends the [begin, end) spans of its
// whitespace-separated tokens to *tokens (views into *buf). Reusing the
// caller's buffers keeps the hot path allocation-free after warmup.
void TokenizeLower(std::string_view s, std::string* buf,
                   std::vector<std::string_view>* tokens) {
  buf->clear();
  buf->reserve(s.size());
  for (char c : s) {
    buf->push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  }
  const char* data = buf->data();
  size_t i = 0;
  const size_t n = buf->size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(data[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(data[i]))) ++i;
    if (i > start) tokens->emplace_back(data + start, i - start);
  }
}

// Sorts and removes duplicate tokens in place (set semantics).
void SortUnique(std::vector<std::string_view>* tokens) {
  std::sort(tokens->begin(), tokens->end());
  tokens->erase(std::unique(tokens->begin(), tokens->end()), tokens->end());
}

struct JaccardScratch {
  std::string buf_a, buf_b;
  std::vector<std::string_view> tok_a, tok_b;
};

}  // namespace

double TokenJaccard(std::string_view a, std::string_view b) {
  thread_local JaccardScratch scratch;
  scratch.tok_a.clear();
  scratch.tok_b.clear();
  TokenizeLower(a, &scratch.buf_a, &scratch.tok_a);
  TokenizeLower(b, &scratch.buf_b, &scratch.tok_b);
  if (scratch.tok_a.empty() && scratch.tok_b.empty()) return 1.0;
  if (scratch.tok_a.empty() || scratch.tok_b.empty()) return 0.0;
  SortUnique(&scratch.tok_a);
  SortUnique(&scratch.tok_b);
  // Sorted-merge intersection: no hashing, no per-call node allocation.
  size_t inter = 0;
  size_t i = 0, j = 0;
  while (i < scratch.tok_a.size() && j < scratch.tok_b.size()) {
    int cmp = scratch.tok_a[i].compare(scratch.tok_b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  size_t uni = scratch.tok_a.size() + scratch.tok_b.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = EditDistance(a, b);
  size_t m = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(m);
}

size_t EditPassBound(size_t max_len, double threshold) {
  const double m = static_cast<double>(max_len);
  const double est = (1.0 - threshold) * m;
  size_t k = est <= 0 ? 0 : static_cast<size_t>(est);
  if (k > max_len) k = max_len;
  // The estimate can be off by an ulp in either direction; settle it against
  // the exact predicate the scores are compared with.
  while (k > 0 && 1.0 - static_cast<double>(k) / m < threshold) --k;
  while (k < max_len && 1.0 - static_cast<double>(k + 1) / m >= threshold) {
    ++k;
  }
  if (1.0 - static_cast<double>(k) / m < threshold) return kEditNoPass;
  return k;
}

namespace ml_text {

std::vector<std::string> UniqueTokensLower(std::string_view text) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) {
      std::string tok(text.substr(start, i - start));
      for (char& c : tok) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      tokens.push_back(std::move(tok));
    }
  }
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

void UniqueTokenViewsLower(std::string_view text, std::string* lower,
                           std::vector<std::string_view>* out) {
  lower->resize(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    (*lower)[i] =
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  }
  out->clear();
  const std::string_view lv(*lower);
  size_t i = 0;
  const size_t n = lv.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(lv[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(lv[i]))) ++i;
    if (i > start) out->push_back(lv.substr(start, i - start));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

}  // namespace ml_text

double NumericSimilarity(double a, double b, double tol) {
  double denom = std::max({std::fabs(a), std::fabs(b), 1e-12});
  double rel = std::fabs(a - b) / denom;
  if (rel <= tol) return 1.0;
  if (rel >= 2 * tol) return 0.0;
  return (2 * tol - rel) / tol;
}

namespace reference {

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = SplitWhitespace(ToLower(a));
  std::vector<std::string> tb = SplitWhitespace(ToLower(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

size_t EditDistance(std::string_view a, std::string_view b) {
  size_t n = a.size();
  size_t m = b.size();
  std::vector<std::vector<size_t>> dp(n + 1, std::vector<size_t>(m + 1));
  for (size_t i = 0; i <= n; ++i) dp[i][0] = i;
  for (size_t j = 0; j <= m; ++j) dp[0][j] = j;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                           dp[i - 1][j - 1] + cost});
    }
  }
  return dp[n][m];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = EditDistance(a, b);
  size_t m = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(m);
}

}  // namespace reference

}  // namespace dcer
