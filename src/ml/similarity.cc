#include "ml/similarity.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/string_util.h"

namespace dcer {

double TokenJaccard(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = SplitWhitespace(ToLower(a));
  std::vector<std::string> tb = SplitWhitespace(ToLower(b));
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double EditSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = EditDistance(a, b);
  size_t m = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(m);
}

double NumericSimilarity(double a, double b, double tol) {
  double denom = std::max({std::fabs(a), std::fabs(b), 1e-12});
  double rel = std::fabs(a - b) / denom;
  if (rel <= tol) return 1.0;
  if (rel >= 2 * tol) return 0.0;
  return (2 * tol - rel) / tol;
}

}  // namespace dcer
