#ifndef DCER_ML_EMBEDDING_H_
#define DCER_ML_EMBEDDING_H_

#include <string_view>
#include <vector>

namespace dcer {

/// A dense text embedding. This is the repo's stand-in for fasttext-style
/// subword embeddings (see DESIGN.md §4): hashed character n-gram counts,
/// L2-normalized. Texts that share many subwords (typos, abbreviations,
/// reorderings) land close in cosine space, which is exactly the property
/// the paper's ML predicates rely on for "semantically similar" text.
using Embedding = std::vector<float>;

/// Embeds text using hashed character n-grams (n in [min_n, max_n]) into a
/// `dim`-dimensional L2-normalized vector. Case-insensitive.
Embedding EmbedText(std::string_view text, size_t dim = 64, size_t min_n = 2,
                    size_t max_n = 4);

/// Cosine similarity of two embeddings (0 if either is all-zero).
double Cosine(const Embedding& a, const Embedding& b);

}  // namespace dcer

#endif  // DCER_ML_EMBEDDING_H_
