#include "ml/registry.h"

#include <cassert>

#include "common/hash.h"

namespace dcer {

int MlRegistry::Register(std::unique_ptr<MlClassifier> classifier) {
  assert(by_name_.find(classifier->name()) == by_name_.end());
  int id = static_cast<int>(classifiers_.size());
  by_name_[classifier->name()] = id;
  classifiers_.push_back(std::move(classifier));
  return id;
}

int MlRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

bool MlRegistry::Predict(int id, uint64_t pair_key,
                         const std::vector<Value>& a,
                         const std::vector<Value>& b) const {
  uint64_t key = HashCombine(HashInt(static_cast<uint64_t>(id)), pair_key);
  Shard& shard = shards_[key % kShards];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.cache.find(key);
    if (it != shard.cache.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  bool result = classifiers_[id]->Predict(a, b);
  num_predictions_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.emplace(key, result);
  }
  return result;
}

void MlRegistry::ResetStats() {
  num_predictions_.store(0);
  num_cache_hits_.store(0);
}

void MlRegistry::ClearCache() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.cache.clear();
  }
}

}  // namespace dcer
