#include "ml/registry.h"

#include <cassert>

#include "common/hash.h"

namespace dcer {

PredictionCache::PredictionCache(int slots_per_stripe_log2) {
  size_t slots = size_t{1} << slots_per_stripe_log2;
  mask_ = slots - 1;
  for (Stripe& stripe : stripes_) {
    stripe.slots = std::make_unique<std::atomic<uint64_t>[]>(slots);
    for (size_t i = 0; i < slots; ++i) {
      stripe.slots[i].store(0, std::memory_order_relaxed);
    }
  }
}

int PredictionCache::Lookup(uint64_t key) const {
  const Stripe& stripe = stripes_[key % kStripes];
  const uint64_t packed_key = Pack(key, false) & ~uint64_t{1};
  size_t slot = (key / kStripes) & mask_;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    uint64_t word =
        stripe.slots[(slot + probe) & mask_].load(std::memory_order_relaxed);
    // Slots are never vacated while readers run, so the first empty slot
    // proves the key was absent when every earlier probe was inserted.
    if (word == 0) return -1;
    if ((word & ~uint64_t{1}) == packed_key) {
      return static_cast<int>(word & 1);
    }
  }
  return -1;
}

void PredictionCache::Insert(uint64_t key, bool value) {
  Stripe& stripe = stripes_[key % kStripes];
  const uint64_t packed = Pack(key, value);
  size_t slot = (key / kStripes) & mask_;
  for (size_t probe = 0; probe < kProbeWindow; ++probe) {
    std::atomic<uint64_t>& cell = stripe.slots[(slot + probe) & mask_];
    uint64_t expected = 0;
    if (cell.compare_exchange_strong(expected, packed,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
      return;
    }
    // Lost the CAS or occupied: if it is (now) our key, we are done — the
    // winner wrote the identical word (predictions are pure).
    if ((expected & ~uint64_t{1}) == (packed & ~uint64_t{1})) return;
  }
  // Probe window full: drop the insert; the prediction recomputes next time.
}

void PredictionCache::Clear() {
  for (Stripe& stripe : stripes_) {
    for (size_t i = 0; i <= mask_; ++i) {
      stripe.slots[i].store(0, std::memory_order_relaxed);
    }
  }
}

int MlRegistry::Register(std::unique_ptr<MlClassifier> classifier) {
  assert(by_name_.find(classifier->name()) == by_name_.end());
  int id = static_cast<int>(classifiers_.size());
  by_name_[classifier->name()] = id;
  classifiers_.push_back(std::move(classifier));
  return id;
}

int MlRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

int MlRegistry::CachedPrediction(int id, uint64_t pair_key) const {
  uint64_t key = HashCombine(HashInt(static_cast<uint64_t>(id)), pair_key);
  int cached = cache_.Lookup(key);
  if (cached >= 0) num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return cached;
}

bool MlRegistry::PredictAndCache(int id, uint64_t pair_key,
                                 const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  uint64_t key = HashCombine(HashInt(static_cast<uint64_t>(id)), pair_key);
  bool result = classifiers_[id]->Predict(a, b);
  num_predictions_.fetch_add(1, std::memory_order_relaxed);
  cache_.Insert(key, result);
  return result;
}

int MlRegistry::PeekPrediction(int id, uint64_t pair_key) const {
  uint64_t key = HashCombine(HashInt(static_cast<uint64_t>(id)), pair_key);
  return cache_.Lookup(key);
}

void MlRegistry::InsertPrediction(int id, uint64_t pair_key,
                                  bool value) const {
  uint64_t key = HashCombine(HashInt(static_cast<uint64_t>(id)), pair_key);
  num_predictions_.fetch_add(1, std::memory_order_relaxed);
  cache_.Insert(key, value);
}

bool MlRegistry::Predict(int id, uint64_t pair_key,
                         const std::vector<Value>& a,
                         const std::vector<Value>& b) const {
  int cached = CachedPrediction(id, pair_key);
  if (cached >= 0) return cached != 0;
  return PredictAndCache(id, pair_key, a, b);
}

void MlRegistry::ResetStats() {
  num_predictions_.store(0);
  num_cache_hits_.store(0);
}

void MlRegistry::ClearCache() {
  cache_.Clear();
  for (const auto& c : classifiers_) c->ClearMemo();
}

}  // namespace dcer
