#include "ml/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DCER_SIMD_X86 1
#else
#define DCER_SIMD_X86 0
#endif

namespace dcer {
namespace simd {

namespace {

constexpr int kUnresolved = -2;

// Resolved tier, cached after the first kernel call. Plain int so the test
// hook can also store "re-resolve" (-2).
std::atomic<int> g_level{kUnresolved};

int Resolve() {
  const char* env = std::getenv("DCER_SIMD");
  if (env != nullptr && env[0] == '0' && env[1] == '\0') {
    return static_cast<int>(Level::kScalar);
  }
#if DCER_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return static_cast<int>(Level::kAvx2);
#endif
  return static_cast<int>(Level::kScalar);
}

inline Level CachedLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUnresolved) {
    level = Resolve();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<Level>(level);
}

// --- Scalar bodies ----------------------------------------------------------

size_t IntersectCountU32Scalar(const uint32_t* a, size_t na, const uint32_t* b,
                               size_t nb, size_t i, size_t j, size_t count) {
  while (i < na && j < nb) {
    const uint32_t x = a[i];
    const uint32_t y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t SharedMinCountU64Scalar(const uint64_t* ka, const uint32_t* ca,
                                 size_t na, const uint64_t* kb,
                                 const uint32_t* cb, size_t nb, size_t i,
                                 size_t j, uint64_t total) {
  while (i < na && j < nb) {
    const uint64_t x = ka[i];
    const uint64_t y = kb[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      total += std::min(ca[i], cb[j]);
      ++i;
      ++j;
    }
  }
  return total;
}

double DotBlockedF32Scalar(const float* a, const float* b, size_t n) {
  double s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += static_cast<double>(a[i]) * b[i];
    s1 += static_cast<double>(a[i + 1]) * b[i + 1];
    s2 += static_cast<double>(a[i + 2]) * b[i + 2];
    s3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) s0 += static_cast<double>(a[i]) * b[i];
  return (s0 + s1) + (s2 + s3);
}

// --- AVX2 bodies ------------------------------------------------------------
//
// Compiled with per-function target attributes (the build does not pass
// -mavx2 globally), entered only after a runtime __builtin_cpu_supports
// check. Each body computes the same integers / the same IEEE double
// sequence as its scalar twin; the scalar tail handlers above finish the
// sub-width remainders, so every (lengths, contents) combination agrees
// bit for bit with the scalar tier.

#if DCER_SIMD_X86

__attribute__((target("avx2"))) size_t IntersectCountU32Avx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb) {
  size_t i = 0, j = 0, count = 0;
  if (na >= 8 && nb >= 8) {
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    while (i + 8 <= na && j + 8 <= nb) {
      // Skip-ahead: disjoint ranges advance without any compares.
      const uint32_t amax = a[i + 7];
      const uint32_t bmax = b[j + 7];
      if (amax < b[j]) {
        i += 8;
        continue;
      }
      if (bmax < a[i]) {
        j += 8;
        continue;
      }
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
      // All-pairs 8x8 equality via 8 rotations of the b block. Elements are
      // unique within an array, so each a lane matches at most one rotation
      // and the OR-reduced mask has one bit per intersecting a element.
      __m256i match = _mm256_cmpeq_epi32(va, vb);
      for (int r = 1; r < 8; ++r) {
        vb = _mm256_permutevar8x32_epi32(vb, rot1);
        match = _mm256_or_si256(match, _mm256_cmpeq_epi32(va, vb));
      }
      count += static_cast<size_t>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(match)))));
      // Advance the block(s) whose maximum was reached; a retired element can
      // never match a later block (both arrays ascend strictly), so nothing
      // is double-counted or missed.
      if (amax <= bmax) i += 8;
      if (bmax <= amax) j += 8;
    }
  }
  return IntersectCountU32Scalar(a, na, b, nb, i, j, count);
}

__attribute__((target("avx2"))) uint64_t SharedMinCountU64Avx2(
    const uint64_t* ka, const uint32_t* ca, size_t na, const uint64_t* kb,
    const uint32_t* cb, size_t nb) {
  size_t i = 0, j = 0;
  uint64_t total = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const uint64_t amax = ka[i + 3];
    const uint64_t bmax = kb[j + 3];
    if (amax < kb[j]) {
      i += 4;
      continue;
    }
    if (bmax < ka[i]) {
      j += 4;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ka + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kb + j));
    __m256i match = _mm256_cmpeq_epi64(va, vb);
    for (int r = 1; r < 4; ++r) {
      vb = _mm256_permute4x64_epi64(vb, 0x39);  // rotate lanes down by one
      match = _mm256_or_si256(match, _mm256_cmpeq_epi64(va, vb));
    }
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(match)));
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      const uint64_t key = ka[i + lane];
      for (int m = 0; m < 4; ++m) {
        if (kb[j + m] == key) {
          total += std::min(ca[i + lane], cb[j + m]);
          break;
        }
      }
    }
    if (amax <= bmax) i += 4;
    if (bmax <= amax) j += 4;
  }
  return SharedMinCountU64Scalar(ka, ca, na, kb, cb, nb, i, j, total);
}

__attribute__((target("avx2"))) double DotBlockedF32Avx2(const float* a,
                                                         const float* b,
                                                         size_t n) {
  // One ymm of 4 doubles IS the scalar tier's (s0, s1, s2, s3): lane l
  // accumulates indices ≡ l (mod 4) with a widen-multiply-add per step —
  // the exact operation sequence of the scalar body, just side by side.
  // No FMA: a fused multiply-add rounds once where mul+add rounds twice.
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d da = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    const __m256d db = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(da, db));
  }
  double s[4];
  _mm256_storeu_pd(s, acc);
  double s0 = s[0];
  for (; i < n; ++i) s0 += static_cast<double>(a[i]) * b[i];
  return (s0 + s[1]) + (s[2] + s[3]);
}

#endif  // DCER_SIMD_X86

}  // namespace

Level ActiveLevel() { return CachedLevel(); }

const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

void SetLevelForTest(int level) {
  g_level.store(level < 0 ? kUnresolved : level, std::memory_order_relaxed);
}

size_t IntersectCountU32(const uint32_t* a, size_t na, const uint32_t* b,
                         size_t nb) {
#if DCER_SIMD_X86
  if (CachedLevel() == Level::kAvx2) {
    return IntersectCountU32Avx2(a, na, b, nb);
  }
#endif
  return IntersectCountU32Scalar(a, na, b, nb, 0, 0, 0);
}

uint64_t SharedMinCountU64(const uint64_t* ka, const uint32_t* ca, size_t na,
                           const uint64_t* kb, const uint32_t* cb, size_t nb) {
#if DCER_SIMD_X86
  if (CachedLevel() == Level::kAvx2) {
    return SharedMinCountU64Avx2(ka, ca, na, kb, cb, nb);
  }
#endif
  return SharedMinCountU64Scalar(ka, ca, na, kb, cb, nb, 0, 0, 0);
}

double DotBlockedF32(const float* a, const float* b, size_t n) {
#if DCER_SIMD_X86
  if (CachedLevel() == Level::kAvx2) return DotBlockedF32Avx2(a, b, n);
#endif
  return DotBlockedF32Scalar(a, b, n);
}

}  // namespace simd
}  // namespace dcer
