#include "ml/classifier.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string_view>

#include "common/string_util.h"
#include "ml/embedding.h"
#include "ml/similarity.h"

namespace dcer {

namespace {
// Shared with the candidate indices (ml/candidate_index.h): the text a
// classifier scores and the text its index filters on must be byte-identical
// or the pruning bounds would not apply to the verified score.
std::string ConcatValues(const std::vector<Value>& vals) {
  return ConcatValueText(vals);
}

// A threshold outside (0, 1] makes the similarity filters vacuous or
// everything-pruning; fall back to full scans there.
bool IndexableThreshold(double t) { return t > 0.0 && t <= 1.0; }
}  // namespace

EmbeddingCosineClassifier::EmbeddingCosineClassifier(std::string name,
                                                     double threshold,
                                                     size_t dim)
    : MlClassifier(std::move(name), threshold), dim_(dim) {}

const Embedding& EmbeddingCosineClassifier::CachedEmbed(
    std::string text) const {
  {
    std::shared_lock<std::shared_mutex> lock(memo_mutex_);
    auto it = memo_.find(text);
    if (it != memo_.end()) return it->second;
  }
  Embedding e = EmbedText(text, dim_);
  std::unique_lock<std::shared_mutex> lock(memo_mutex_);
  // emplace is a no-op if a racing thread inserted first; either way the
  // returned reference stays valid (node-based map, values never erased).
  return memo_.emplace(std::move(text), std::move(e)).first->second;
}

void EmbeddingCosineClassifier::ClearMemo() const {
  std::unique_lock<std::shared_mutex> lock(memo_mutex_);
  memo_.clear();
}

double EmbeddingCosineClassifier::Score(const std::vector<Value>& a,
                                        const std::vector<Value>& b) const {
  double c = Cosine(CachedEmbed(ConcatValues(a)), CachedEmbed(ConcatValues(b)));
  return c < 0 ? 0 : c;
}

CandidateIndexKind EmbeddingCosineClassifier::candidate_index_kind() const {
  return IndexableThreshold(threshold()) ? CandidateIndexKind::kApprox
                                         : CandidateIndexKind::kNone;
}

std::unique_ptr<MlCandidateIndex> EmbeddingCosineClassifier::BuildCandidateIndex(
    const std::vector<uint32_t>& rows, const RowValuesFn& fill,
    const ProfileSource* profiles) const {
  (void)profiles;  // LSH re-embeds; profiles carry no embedding state
  if (candidate_index_kind() == CandidateIndexKind::kNone) return nullptr;
  return std::make_unique<CosineLshIndex>(threshold(), dim_, rows, fill);
}

TokenJaccardClassifier::TokenJaccardClassifier(std::string name,
                                               double threshold)
    : MlClassifier(std::move(name), threshold) {}

double TokenJaccardClassifier::Score(const std::vector<Value>& a,
                                     const std::vector<Value>& b) const {
  std::string sa, sb;
  return TokenJaccard(ConcatValueView(a, &sa), ConcatValueView(b, &sb));
}

CandidateIndexKind TokenJaccardClassifier::candidate_index_kind() const {
  return IndexableThreshold(threshold()) ? CandidateIndexKind::kExact
                                         : CandidateIndexKind::kNone;
}

std::unique_ptr<MlCandidateIndex> TokenJaccardClassifier::BuildCandidateIndex(
    const std::vector<uint32_t>& rows, const RowValuesFn& fill,
    const ProfileSource* profiles) const {
  if (candidate_index_kind() == CandidateIndexKind::kNone) return nullptr;
  return std::make_unique<TokenJaccardIndex>(threshold(), rows, fill,
                                             profiles);
}

EditSimilarityClassifier::EditSimilarityClassifier(std::string name,
                                                   double threshold)
    : MlClassifier(std::move(name), threshold) {}

double EditSimilarityClassifier::Score(const std::vector<Value>& a,
                                       const std::vector<Value>& b) const {
  std::string sa, sb;
  return EditSimilarity(ConcatValueView(a, &sa), ConcatValueView(b, &sb));
}

bool EditSimilarityClassifier::Predict(const std::vector<Value>& a,
                                       const std::vector<Value>& b) const {
  std::string sa, sb;
  const std::string_view ta = ConcatValueView(a, &sa);
  const std::string_view tb = ConcatValueView(b, &sb);
  if (ta.empty() && tb.empty()) return 1.0 >= threshold();
  const size_t m = std::max(ta.size(), tb.size());
  // k is the largest distance whose score still reaches the threshold under
  // the exact IEEE comparison Score performs; deciding d <= k is therefore
  // the same boolean, and lets the DP stop as soon as the band is exceeded.
  const size_t k = EditPassBound(m, threshold());
  if (k == kEditNoPass) return false;
  const size_t diff =
      ta.size() > tb.size() ? ta.size() - tb.size() : tb.size() - ta.size();
  if (diff > k) return false;
  return EditDistance(ta, tb, static_cast<int>(k)) <= k;
}

CandidateIndexKind EditSimilarityClassifier::candidate_index_kind() const {
  return IndexableThreshold(threshold()) ? CandidateIndexKind::kExact
                                         : CandidateIndexKind::kNone;
}

std::unique_ptr<MlCandidateIndex> EditSimilarityClassifier::BuildCandidateIndex(
    const std::vector<uint32_t>& rows, const RowValuesFn& fill,
    const ProfileSource* profiles) const {
  if (candidate_index_kind() == CandidateIndexKind::kNone) return nullptr;
  return std::make_unique<QGramEditIndex>(threshold(), rows, fill, /*q=*/2,
                                          profiles);
}

NumericToleranceClassifier::NumericToleranceClassifier(std::string name,
                                                       double tolerance,
                                                       double threshold)
    : MlClassifier(std::move(name), threshold), tolerance_(tolerance) {}

double NumericToleranceClassifier::Score(const std::vector<Value>& a,
                                         const std::vector<Value>& b) const {
  double sa = 0;
  double sb = 0;
  size_t na = 0;
  size_t nb = 0;
  for (const Value& v : a) {
    if (!v.is_null() && v.type() != ValueType::kString) {
      sa += v.AsDouble();
      ++na;
    }
  }
  for (const Value& v : b) {
    if (!v.is_null() && v.type() != ValueType::kString) {
      sb += v.AsDouble();
      ++nb;
    }
  }
  if (na == 0 || nb == 0) return 0;
  return NumericSimilarity(sa / na, sb / nb, tolerance_);
}

LearnedPairClassifier::LearnedPairClassifier(std::string name,
                                             double threshold)
    : MlClassifier(std::move(name), threshold) {}

std::vector<double> LearnedPairClassifier::Features(
    const std::vector<Value>& a, const std::vector<Value>& b) {
  std::string sa = ConcatValues(a);
  std::string sb = ConcatValues(b);
  std::vector<double> f;
  f.push_back(Cosine(EmbedText(sa), EmbedText(sb)));
  f.push_back(TokenJaccard(sa, sb));
  f.push_back(EditSimilarity(sa, sb));
  // Length agreement.
  double la = static_cast<double>(sa.size());
  double lb = static_cast<double>(sb.size());
  f.push_back(1.0 - std::fabs(la - lb) / std::max({la, lb, 1.0}));
  // Numeric agreement over aligned numeric attributes.
  double num_sim = 0;
  size_t num_count = 0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    bool na = a[i].type() == ValueType::kInt || a[i].type() == ValueType::kDouble;
    bool nb = b[i].type() == ValueType::kInt || b[i].type() == ValueType::kDouble;
    if (na && nb) {
      num_sim += NumericSimilarity(a[i].AsDouble(), b[i].AsDouble(), 0.15);
      ++num_count;
    }
  }
  f.push_back(num_count == 0 ? 0.5 : num_sim / num_count);
  return f;
}

double LearnedPairClassifier::Score(const std::vector<Value>& a,
                                    const std::vector<Value>& b) const {
  std::vector<double> f = Features(a, b);
  if (!trained_) {
    double mean = 0;
    for (double v : f) mean += v;
    return mean / f.size();
  }
  double z = bias_;
  for (size_t i = 0; i < f.size() && i < weights_.size(); ++i) {
    z += weights_[i] * f[i];
  }
  return 1.0 / (1.0 + std::exp(-z));  // squash margin to [0,1]
}

void LearnedPairClassifier::Train(
    const std::vector<std::vector<double>>& features,
    const std::vector<bool>& labels, size_t epochs) {
  if (features.empty()) return;
  size_t dim = features[0].size();
  std::vector<double> w(dim, 0.0);
  double b = 0;
  std::vector<double> w_sum(dim, 0.0);
  double b_sum = 0;
  size_t updates = 1;
  for (size_t e = 0; e < epochs; ++e) {
    for (size_t i = 0; i < features.size(); ++i) {
      double z = b;
      for (size_t j = 0; j < dim; ++j) z += w[j] * features[i][j];
      int y = labels[i] ? 1 : -1;
      if (y * z <= 0) {
        for (size_t j = 0; j < dim; ++j) w[j] += y * features[i][j];
        b += y;
      }
      for (size_t j = 0; j < dim; ++j) w_sum[j] += w[j];
      b_sum += b;
      ++updates;
    }
  }
  weights_.assign(dim, 0.0);
  for (size_t j = 0; j < dim; ++j) weights_[j] = w_sum[j] / updates;
  bias_ = b_sum / updates;
  trained_ = true;
}

}  // namespace dcer
