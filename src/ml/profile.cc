#include "ml/profile.h"

#include <algorithm>
#include <string>

#include "common/hash.h"
#include "common/string_util.h"
#include "ml/similarity.h"
#include "ml/simd.h"

namespace dcer {

namespace {

// Myers' bit-parallel pattern state, hoisted out of the candidate loop: the
// peq table depends only on the probe, so a one-vs-many batch builds it once
// and streams every candidate through it. The column loop below replays
// common/string_util.cc's EditDistance kernel (same recurrence, same
// early-exit bound), so the returned integers are identical.
struct MyersPattern {
  uint64_t peq[256];
  size_t n = 0;
  uint64_t high = 0;

  void Build(std::string_view a) {
    std::fill(std::begin(peq), std::end(peq), 0);
    n = a.size();
    for (size_t i = 0; i < n; ++i) {
      peq[static_cast<unsigned char>(a[i])] |= uint64_t{1} << i;
    }
    high = n == 0 ? 0 : uint64_t{1} << (n - 1);
  }
};

// Exact Levenshtein distance of the pattern vs `b` (1 <= pattern length
// <= 64, any |b|); with bound >= 0, returns bound+1 as soon as the distance
// provably exceeds it.
size_t MyersDistance(const MyersPattern& p, std::string_view b, int bound) {
  const size_t m = b.size();
  uint64_t pv = ~uint64_t{0};
  uint64_t mv = 0;
  size_t score = p.n;
  for (size_t j = 0; j < m; ++j) {
    const uint64_t eq = p.peq[static_cast<unsigned char>(b[j])];
    const uint64_t xv = eq | mv;
    const uint64_t xh = (((eq & pv) + pv) ^ pv) | eq;
    uint64_t ph = mv | ~(xh | pv);
    uint64_t mh = pv & xh;
    if (ph & p.high) {
      ++score;
    } else if (mh & p.high) {
      --score;
    }
    if (bound >= 0 && score > static_cast<size_t>(bound) + (m - 1 - j)) {
      return static_cast<size_t>(bound) + 1;
    }
    ph = (ph << 1) | 1;
    mh <<= 1;
    pv = mh | ~(xv | ph);
    mv = ph & xv;
  }
  if (bound >= 0 && score > static_cast<size_t>(bound)) {
    return static_cast<size_t>(bound) + 1;
  }
  return score;
}

uint64_t SimhashOfGrams(const uint64_t* hashes, const uint32_t* counts,
                        size_t n) {
  int64_t votes[64] = {};
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = hashes[i];
    const int64_t c = static_cast<int64_t>(counts[i]);
    for (int bit = 0; bit < 64; ++bit) {
      votes[bit] += ((h >> bit) & 1) ? c : -c;
    }
  }
  uint64_t sig = 0;
  for (int bit = 0; bit < 64; ++bit) {
    if (votes[bit] > 0) sig |= uint64_t{1} << bit;
  }
  return sig;
}

}  // namespace

ProfileStore::ProfileStore(const StringPool* pool, size_t q)
    : pool_(pool), q_(q) {}

void ProfileStore::Sync() {
  const size_t begin = built_.load(std::memory_order_relaxed);
  const size_t end = pool_->size();
  if (begin >= end) return;
  profiles_.reserve(end);
  std::vector<uint32_t> tok_ids;
  std::vector<uint64_t> grams;
  std::string lower;
  std::vector<std::string_view> toks;
  for (size_t id = begin; id < end; ++id) {
    const std::string_view text = pool_->view(static_cast<uint32_t>(id));
    Profile p;
    p.byte_len = static_cast<uint32_t>(text.size());

    // Token set: TokenJaccard's semantics, interned into the shared
    // dictionary and stored sorted by id so two profiles intersect with one
    // sorted-uint32 merge. The view-based tokenizer reuses the scratch
    // buffers across the whole build instead of allocating per token.
    tok_ids.clear();
    ml_text::UniqueTokenViewsLower(text, &lower, &toks);
    for (const std::string_view tok : toks) {
      tok_ids.push_back(token_dict_.Intern(tok));
    }
    std::sort(tok_ids.begin(), tok_ids.end());
    p.tok_begin = static_cast<uint32_t>(token_arena_.size());
    p.tok_count = static_cast<uint32_t>(tok_ids.size());
    token_arena_.insert(token_arena_.end(), tok_ids.begin(), tok_ids.end());

    // Q-gram count sketch: candidate_index.cc's GramsOf, run-length encoded.
    grams.clear();
    if (text.size() >= q_) {
      for (size_t i = 0; i + q_ <= text.size(); ++i) {
        grams.push_back(Fnv1a64(text.data() + i, q_, q_));
      }
      std::sort(grams.begin(), grams.end());
    }
    p.gram_begin = static_cast<uint32_t>(gram_hash_arena_.size());
    p.gram_total = static_cast<uint32_t>(grams.size());
    for (size_t i = 0; i < grams.size();) {
      size_t j = i;
      while (j < grams.size() && grams[j] == grams[i]) ++j;
      gram_hash_arena_.push_back(grams[i]);
      gram_count_arena_.push_back(static_cast<uint32_t>(j - i));
      i = j;
    }
    p.gram_count =
        static_cast<uint32_t>(gram_hash_arena_.size()) - p.gram_begin;

    p.simhash = SimhashOfGrams(gram_hash_arena_.data() + p.gram_begin,
                               gram_count_arena_.data() + p.gram_begin,
                               p.gram_count);
    profiles_.push_back(p);
  }
  built_.store(end, std::memory_order_release);
}

size_t ProfileStore::ByteSize() const {
  return profiles_.capacity() * sizeof(Profile) +
         token_arena_.capacity() * sizeof(uint32_t) +
         gram_hash_arena_.capacity() * sizeof(uint64_t) +
         gram_count_arena_.capacity() * sizeof(uint32_t) +
         token_dict_.ByteSize();
}

// --- Batch kernels ----------------------------------------------------------

namespace {

// Empty-text profile stand-in for kNpos (NULL cells render as "").
struct ProbeTokens {
  const uint32_t* ids = nullptr;
  size_t count = 0;
};

ProbeTokens TokensOf(const ProfileStore& store, uint32_t id) {
  if (id == ProfileStore::kNpos) return {};
  const ProfileStore::Profile* p = store.Find(id);
  if (p == nullptr) return {};  // callers sync before batching
  return {store.tokens(*p), p->tok_count};
}

}  // namespace

void ScoreTokenJaccardBatch(const ProfileStore& store, uint32_t probe_id,
                            const uint32_t* cand_ids, size_t n, double* out) {
  const ProbeTokens a = TokensOf(store, probe_id);
  for (size_t i = 0; i < n; ++i) {
    const ProbeTokens b = TokensOf(store, cand_ids[i]);
    if (a.count == 0 && b.count == 0) {
      out[i] = 1.0;
      continue;
    }
    if (a.count == 0 || b.count == 0) {
      out[i] = 0.0;
      continue;
    }
    const size_t inter = simd::IntersectCountU32(a.ids, a.count, b.ids,
                                                 b.count);
    const size_t uni = a.count + b.count - inter;
    out[i] = static_cast<double>(inter) / static_cast<double>(uni);
  }
}

void PredictTokenJaccardBatch(const ProfileStore& store, uint32_t probe_id,
                              const uint32_t* cand_ids, size_t n,
                              double threshold, uint8_t* preds) {
  const ProbeTokens a = TokensOf(store, probe_id);
  for (size_t i = 0; i < n; ++i) {
    const ProbeTokens b = TokensOf(store, cand_ids[i]);
    if (a.count == 0 && b.count == 0) {
      preds[i] = 1.0 >= threshold;
      continue;
    }
    if (a.count == 0 || b.count == 0) {
      preds[i] = 0.0 >= threshold;
      continue;
    }
    // Size prune: the score is at most min/max (reals), and rounding is
    // monotone, so a failing upper bound proves the exact double fails too.
    const size_t mn = std::min(a.count, b.count);
    const size_t mx = std::max(a.count, b.count);
    if (static_cast<double>(mn) / static_cast<double>(mx) < threshold) {
      preds[i] = 0;
      continue;
    }
    const size_t inter = simd::IntersectCountU32(a.ids, a.count, b.ids,
                                                 b.count);
    const size_t uni = a.count + b.count - inter;
    preds[i] =
        static_cast<double>(inter) / static_cast<double>(uni) >= threshold;
  }
}

void ScoreEditSimilarityBatch(const ProfileStore& store, uint32_t probe_id,
                              const uint32_t* cand_ids, size_t n,
                              double* out) {
  const std::string_view a =
      probe_id == ProfileStore::kNpos ? std::string_view() : store.text(probe_id);
  MyersPattern pattern;
  const bool hoist = !a.empty() && a.size() <= 64;
  if (hoist) pattern.Build(a);
  for (size_t i = 0; i < n; ++i) {
    const std::string_view b = cand_ids[i] == ProfileStore::kNpos
                                   ? std::string_view()
                                   : store.text(cand_ids[i]);
    if (a.empty() && b.empty()) {
      out[i] = 1.0;
      continue;
    }
    const size_t d = hoist ? MyersDistance(pattern, b, /*bound=*/-1)
                           : EditDistance(a, b);
    const size_t m = std::max(a.size(), b.size());
    out[i] = 1.0 - static_cast<double>(d) / static_cast<double>(m);
  }
}

void PredictEditSimilarityBatch(const ProfileStore& store, uint32_t probe_id,
                                const uint32_t* cand_ids, size_t n,
                                double threshold, uint8_t* preds) {
  const ProfileStore::Profile* ap =
      probe_id == ProfileStore::kNpos ? nullptr : store.Find(probe_id);
  const std::string_view a =
      probe_id == ProfileStore::kNpos ? std::string_view() : store.text(probe_id);
  const size_t la = a.size();
  const size_t q = store.q();
  MyersPattern pattern;
  const bool hoist = la >= 1 && la <= 64;
  if (hoist) pattern.Build(a);
  for (size_t i = 0; i < n; ++i) {
    const ProfileStore::Profile* bp = cand_ids[i] == ProfileStore::kNpos
                                          ? nullptr
                                          : store.Find(cand_ids[i]);
    const size_t lb = bp == nullptr ? 0 : bp->byte_len;
    if (la == 0 && lb == 0) {
      preds[i] = 1.0 >= threshold;
      continue;
    }
    const size_t m = std::max(la, lb);
    const size_t k = EditPassBound(m, threshold);
    if (k == kEditNoPass) {
      preds[i] = 0;
      continue;
    }
    // Length band: d >= ||a| - |b||, and k is the exact pass boundary.
    const size_t diff = la > lb ? la - lb : lb - la;
    if (diff > k) {
      preds[i] = 0;
      continue;
    }
    // Q-gram count filter (candidate_index.h's bound): distance <= k needs
    // at least m - q + 1 - k*q shared grams, counted with multiplicity.
    const int64_t gram_bound = static_cast<int64_t>(m) -
                               static_cast<int64_t>(q) + 1 -
                               static_cast<int64_t>(k * q);
    if (gram_bound > 0) {
      const uint64_t shared =
          (ap == nullptr || bp == nullptr)
              ? 0
              : simd::SharedMinCountU64(
                    store.gram_hashes(*ap), store.gram_counts(*ap),
                    ap->gram_count, store.gram_hashes(*bp),
                    store.gram_counts(*bp), bp->gram_count);
      if (shared < static_cast<uint64_t>(gram_bound)) {
        preds[i] = 0;
        continue;
      }
    }
    const std::string_view b =
        bp == nullptr ? std::string_view() : store.text(cand_ids[i]);
    const size_t d = hoist ? MyersDistance(pattern, b, static_cast<int>(k))
                           : EditDistance(a, b, static_cast<int>(k));
    preds[i] = d <= k;
  }
}

}  // namespace dcer
