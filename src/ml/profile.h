#ifndef DCER_ML_PROFILE_H_
#define DCER_ML_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "relational/string_pool.h"

namespace dcer {

/// Precomputed similarity profiles of a Dataset's interned strings — the
/// vectorized similarity engine's data plane. One ProfileStore shadows one
/// StringPool: profile i describes pool string i, so any columnar cell
/// (Column::str_id) or interned Value addresses its profile in O(1) with no
/// hashing. Per string the store holds, in append-only arenas:
///
///   - the sorted unique token-id set (token-dictionary ids, see below) —
///     TokenJaccard over two profiles is one sorted-uint32 intersection
///     (simd::IntersectCountU32) and a division, with no lowercasing,
///     tokenizing or sorting per call;
///   - the sorted q-gram count sketch (FNV hash + multiplicity, q = 2,
///     exactly candidate_index.cc's GramsOf) — the edit kernel's count
///     filter becomes a sorted-uint64 merge (simd::SharedMinCountU64);
///   - the byte length — the length band of the edit predicate;
///   - a 64-bit SimHash of the gram sketch — a cheap Hamming prefilter for
///     LSH-style candidate generation (exercised by tests; kept per string
///     so future banding indices need no re-embedding pass).
///
/// Token ids come from a private interning dictionary (its own StringPool)
/// shared by every profile in the store; equal tokens anywhere in the
/// dataset get equal ids, so two profiles' token sets intersect by id.
/// Ids are assigned in first-seen order while scanning pool ids upward,
/// which makes an incrementally grown store (Sync after appends) arena-
/// identical to one built from scratch over the final pool.
///
/// Concurrency contract (same as DatasetIndex): Sync() mutates and runs only
/// in exclusive phases — index prewarm, NotifyAppend between supersteps.
/// Find()/tokens()/gram_*() are read-only and safe from concurrent
/// enumeration shards once synced.
class ProfileStore {
 public:
  /// Sentinel intern id: "no string here" (NULL cell). Equals
  /// StringPool::kNpos; profiled kernels treat it as the empty text.
  static constexpr uint32_t kNpos = StringPool::kNpos;

  struct Profile {
    uint32_t tok_begin;   // into the token-id arena
    uint32_t tok_count;   // sorted unique token ids
    uint32_t gram_begin;  // into the gram arenas
    uint32_t gram_count;  // distinct gram hashes (RLE groups)
    uint32_t byte_len;    // pool string length in bytes
    uint32_t gram_total;  // Σ multiplicities = byte_len - q + 1 (0 if short)
    uint64_t simhash;     // 64-bit SimHash over the gram sketch
  };

  explicit ProfileStore(const StringPool* pool, size_t q = 2);

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// Profiles every pool string in [size(), pool->size()). Idempotent;
  /// incremental growth is arena-identical to a from-scratch build.
  void Sync();

  /// Number of pool ids profiled so far.
  size_t size() const { return built_.load(std::memory_order_acquire); }

  /// Profile of pool string `id`; nullptr when `id` is kNpos or not yet
  /// synced. Lock-free.
  const Profile* Find(uint32_t id) const {
    if (id >= built_.load(std::memory_order_acquire)) return nullptr;
    return &profiles_[id];
  }

  /// The profiled string's bytes (the pool's arena view).
  std::string_view text(uint32_t id) const { return pool_->view(id); }

  const uint32_t* tokens(const Profile& p) const {
    return token_arena_.data() + p.tok_begin;
  }
  const uint64_t* gram_hashes(const Profile& p) const {
    return gram_hash_arena_.data() + p.gram_begin;
  }
  const uint32_t* gram_counts(const Profile& p) const {
    return gram_count_arena_.data() + p.gram_begin;
  }

  /// Token-dictionary lookups for probes that arrive as raw text (sides that
  /// are not a single interned string). Find never inserts.
  uint32_t FindToken(std::string_view lower_token) const {
    return token_dict_.Find(lower_token);
  }
  std::string_view token_text(uint32_t token_id) const {
    return token_dict_.view(token_id);
  }
  size_t num_tokens() const { return token_dict_.size(); }

  size_t q() const { return q_; }

  /// Approximate arena footprint in bytes (bench accounting).
  size_t ByteSize() const;

 private:
  const StringPool* pool_;
  size_t q_;
  StringPool token_dict_;  // token text -> dense token id
  std::vector<Profile> profiles_;
  std::vector<uint32_t> token_arena_;
  std::vector<uint64_t> gram_hash_arena_;
  std::vector<uint32_t> gram_count_arena_;
  std::atomic<size_t> built_{0};
};

/// --- One-vs-many batch kernels ---------------------------------------------
///
/// Score one probe string against `n` candidate strings, all addressed by
/// pool intern id (kNpos = empty text, the NULL-cell rendering of
/// ConcatValueText). Every id must be covered by the store. Scores are
/// bit-identical to the pairwise kernels in ml/similarity.h: the integer
/// overlap counts are order-free and the final double arithmetic replays the
/// scalar kernels' exact operation sequence.

/// out[i] = TokenJaccard(text(probe_id), text(cand_ids[i])).
void ScoreTokenJaccardBatch(const ProfileStore& store, uint32_t probe_id,
                            const uint32_t* cand_ids, size_t n, double* out);

/// out[i] = EditSimilarity(text(probe_id), text(cand_ids[i])). Hoists the
/// probe's Myers bit-parallel pattern table across the whole batch when the
/// probe fits in one word (|probe| <= 64).
void ScoreEditSimilarityBatch(const ProfileStore& store, uint32_t probe_id,
                              const uint32_t* cand_ids, size_t n, double* out);

/// preds[i] = (TokenJaccard(...) >= threshold), bit-for-bit the boolean the
/// pairwise classifier computes, but pruned: candidates whose set sizes
/// already cap the score below the threshold are rejected without merging.
void PredictTokenJaccardBatch(const ProfileStore& store, uint32_t probe_id,
                              const uint32_t* cand_ids, size_t n,
                              double threshold, uint8_t* preds);

/// preds[i] = (EditSimilarity(...) >= threshold), exactly. Prunes through
/// EditPassBound: the length band and the q-gram count filter reject without
/// touching the DP, and survivors run the banded Myers kernel — all three
/// stages decide the same boolean the unbanded score comparison would.
void PredictEditSimilarityBatch(const ProfileStore& store, uint32_t probe_id,
                                const uint32_t* cand_ids, size_t n,
                                double threshold, uint8_t* preds);

}  // namespace dcer

#endif  // DCER_ML_PROFILE_H_
