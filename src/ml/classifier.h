#ifndef DCER_ML_CLASSIFIER_H_
#define DCER_ML_CLASSIFIER_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/candidate_index.h"
#include "ml/embedding.h"
#include "relational/value.h"

namespace dcer {

/// Which profile-backed one-vs-many kernel (ml/profile.h) evaluates this
/// classifier's boolean predicate in bulk. kNone keeps per-pair Predict.
/// A batch kernel must return bit-for-bit the same booleans as Predict on
/// every pair — the join mixes batched and per-pair evaluation freely.
enum class MlBatchKernel { kNone, kTokenJaccard, kEditSimilarity };

/// The boolean ML oracle M(t[Ā], s[B̄]) of Sec. II: a well-trained classifier
/// applied to two attribute-value vectors, returning true iff it predicts a
/// match. Implementations must be deterministic and thread-safe (Predict is
/// called concurrently from BSP workers). Probabilistic models are exposed
/// through Score() plus a threshold, matching the paper's Remark (2).
class MlClassifier {
 public:
  explicit MlClassifier(std::string name, double threshold = 0.5)
      : name_(std::move(name)), threshold_(threshold) {}
  virtual ~MlClassifier() = default;

  MlClassifier(const MlClassifier&) = delete;
  MlClassifier& operator=(const MlClassifier&) = delete;

  const std::string& name() const { return name_; }
  double threshold() const { return threshold_; }
  void set_threshold(double t) { threshold_ = t; }

  /// Match probability/score in [0, 1].
  virtual double Score(const std::vector<Value>& a,
                       const std::vector<Value>& b) const = 0;

  /// Boolean prediction (the predicate's truth value). Virtual so
  /// classifiers with an exact decision procedure cheaper than the full
  /// score (e.g. banded edit distance) can override it; any override must
  /// return exactly Score(a, b) >= threshold().
  virtual bool Predict(const std::vector<Value>& a,
                       const std::vector<Value>& b) const {
    return Score(a, b) >= threshold_;
  }

  /// Profile-backed batch kernel for this classifier (kNone by default).
  virtual MlBatchKernel batch_kernel() const { return MlBatchKernel::kNone; }

  /// Drops any internal memoization (e.g. per-text embeddings). Called by
  /// MlRegistry::ClearCache so benchmark repetitions start cold.
  virtual void ClearMemo() const {}

  /// Whether (and how soundly) this classifier can act as a candidate
  /// generator instead of a pairwise post-filter. kNone (the default) keeps
  /// the full-scan join behaviour.
  virtual CandidateIndexKind candidate_index_kind() const {
    return CandidateIndexKind::kNone;
  }

  /// Builds a candidate index over one side of the predicate (`rows`, with
  /// attribute values supplied by `fill`). Returns nullptr when
  /// candidate_index_kind() is kNone. The index's Probe must honour the
  /// classifier's *current* threshold; callers rebuild if the threshold
  /// changes after construction. `profiles` (optional) lets string indices
  /// build from precomputed ProfileStore arenas; the resulting index probes
  /// identically with or without it.
  virtual std::unique_ptr<MlCandidateIndex> BuildCandidateIndex(
      const std::vector<uint32_t>& rows, const RowValuesFn& fill,
      const ProfileSource* profiles = nullptr) const {
    (void)rows;
    (void)fill;
    (void)profiles;
    return nullptr;
  }

 private:
  std::string name_;
  double threshold_;
};

/// "fasttext-like": concatenates the string renderings of all attributes,
/// embeds with hashed char n-grams, scores by cosine. Good at typos,
/// abbreviations and token reorderings in long text (product descriptions).
///
/// Embeddings are memoized per concatenated text: the chase scores each
/// tuple against many candidates, and hashing the n-grams of the same text
/// over and over dominated cold-prediction time. The memo is shared-lock
/// protected (concurrent Score calls from BSP workers / enumeration shards).
class EmbeddingCosineClassifier : public MlClassifier {
 public:
  EmbeddingCosineClassifier(std::string name, double threshold = 0.8,
                            size_t dim = 64);
  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;
  void ClearMemo() const override;

  /// LSH banding loses recall, so the cosine index is approximate-only and
  /// gated behind MatchOptions::ml_index_approx.
  CandidateIndexKind candidate_index_kind() const override;
  std::unique_ptr<MlCandidateIndex> BuildCandidateIndex(
      const std::vector<uint32_t>& rows, const RowValuesFn& fill,
      const ProfileSource* profiles = nullptr) const override;

 private:
  const Embedding& CachedEmbed(std::string text) const;

  size_t dim_;
  mutable std::shared_mutex memo_mutex_;
  // node-based map: rehash never invalidates the references CachedEmbed
  // hands out.
  mutable std::unordered_map<std::string, Embedding> memo_;
};

/// Token-set Jaccard over concatenated attributes (schema-agnostic matcher
/// building block, also used by the SparkER-like baseline).
class TokenJaccardClassifier : public MlClassifier {
 public:
  explicit TokenJaccardClassifier(std::string name, double threshold = 0.5);
  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;

  /// Batched evaluation: sorted token-id intersection over profiles.
  MlBatchKernel batch_kernel() const override {
    return MlBatchKernel::kTokenJaccard;
  }

  /// Sound PPJoin-style prefix+length filtered token index.
  CandidateIndexKind candidate_index_kind() const override;
  std::unique_ptr<MlCandidateIndex> BuildCandidateIndex(
      const std::vector<uint32_t>& rows, const RowValuesFn& fill,
      const ProfileSource* profiles = nullptr) const override;
};

/// Normalized edit similarity over concatenated attributes (short strings:
/// names, emails).
class EditSimilarityClassifier : public MlClassifier {
 public:
  explicit EditSimilarityClassifier(std::string name, double threshold = 0.75);
  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;

  /// Threshold-aware prediction: converts the threshold to the exact edit
  /// bound (EditPassBound), rejects on the length band, and runs the banded
  /// DP — same boolean as Score >= threshold, usually without finishing the
  /// full distance.
  bool Predict(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;

  /// Batched evaluation: banded Myers over cached lengths/gram sketches.
  MlBatchKernel batch_kernel() const override {
    return MlBatchKernel::kEditSimilarity;
  }

  /// Sound q-gram count + length filtered index.
  CandidateIndexKind candidate_index_kind() const override;
  std::unique_ptr<MlCandidateIndex> BuildCandidateIndex(
      const std::vector<uint32_t>& rows, const RowValuesFn& fill,
      const ProfileSource* profiles = nullptr) const override;
};

/// Numeric agreement within a relative tolerance (e.g., song durations,
/// odometer readings). Score is NumericSimilarity of the attribute means.
class NumericToleranceClassifier : public MlClassifier {
 public:
  NumericToleranceClassifier(std::string name, double tolerance,
                             double threshold = 0.99);
  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;

 private:
  double tolerance_;
};

/// "DeepER-like": a trainable linear model over per-attribute similarity
/// features (cosine, jaccard, edit, numeric agreement). Train() fits weights
/// by averaged perceptron on labeled pairs; before training it behaves as an
/// unweighted mean of features. See DESIGN.md §4 for why this substitution
/// preserves the experiments' behaviour.
class LearnedPairClassifier : public MlClassifier {
 public:
  explicit LearnedPairClassifier(std::string name, double threshold = 0.5);

  double Score(const std::vector<Value>& a,
               const std::vector<Value>& b) const override;

  /// Per-pair feature vector; exposed for training and for the baselines.
  static std::vector<double> Features(const std::vector<Value>& a,
                                      const std::vector<Value>& b);

  /// Fits weights with averaged perceptron over `epochs` passes.
  void Train(const std::vector<std::vector<double>>& features,
             const std::vector<bool>& labels, size_t epochs = 10);

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;  // empty until trained
  double bias_ = 0;
  bool trained_ = false;
};

}  // namespace dcer

#endif  // DCER_ML_CLASSIFIER_H_
