#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/timer.h"
#include "ml/similarity.h"

namespace dcer {

BaselineReport RunMetaBlocking(const Dataset& dataset,
                               const std::vector<RelationHint>& hints,
                               const BaselineConfig& config,
                               MatchContext* out) {
  Timer timer;
  BaselineReport report;
  for (const RelationHint& hint : hints) {
    // Pass 1: collect candidate pairs with co-occurrence weights.
    std::vector<std::pair<std::pair<Gid, Gid>, int>> pairs;
    double total_weight = 0;
    baselines_internal::ForEachTokenPair(
        dataset, hint, config.max_block, [&](Gid a, Gid b, int weight) {
          pairs.push_back({{a, b}, weight});
          total_weight += weight;
        });
    if (pairs.empty()) continue;
    // Meta-blocking pruning: keep edges above the mean weight.
    double mean = total_weight / static_cast<double>(pairs.size());
    auto concat = [&](Gid g) {
      std::string s;
      const Row& row = dataset.tuple(g);
      for (size_t attr : hint.compare_attrs) {
        if (!row[attr].is_null()) {
          s += row[attr].ToString();
          s += ' ';
        }
      }
      return s;
    };
    for (const auto& [pair, weight] : pairs) {
      if (weight < mean) continue;
      ++report.comparisons;
      if (TokenJaccard(concat(pair.first), concat(pair.second)) >=
          config.threshold * 0.8) {
        if (out->Apply(Fact::IdMatch(pair.first, pair.second), nullptr)) {
          ++report.matches;
        }
      }
    }
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
