#include "baselines/variants.h"

namespace dcer {

RuleSet CollectiveOnlyRules(const RuleSet& rules) {
  RuleSet out;
  for (const Rule& r : rules.rules()) {
    if (!r.HasIdPrecondition()) out.Add(r);
  }
  return out;
}

RuleSet DeepOnlyRules(const RuleSet& rules, size_t max_vars) {
  RuleSet out;
  for (const Rule& r : rules.rules()) {
    if (r.num_vars() <= max_vars) out.Add(r);
  }
  return out;
}

}  // namespace dcer
