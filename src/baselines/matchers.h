#ifndef DCER_BASELINES_MATCHERS_H_
#define DCER_BASELINES_MATCHERS_H_

#include "baselines/pair_classifier.h"

namespace dcer {

/// Dedoop-like: exact blocking on the hint's block attribute, then weighted
/// average attribute similarity within blocks (rule-based, single pass).
BaselineReport RunBlocking(const Dataset& dataset,
                           const std::vector<RelationHint>& hints,
                           const BaselineConfig& config, MatchContext* out);

/// Sorted-neighborhood (merge/purge): sort by the hint's sort attribute,
/// compare tuples within a sliding window.
BaselineReport RunWindowing(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config, MatchContext* out);

/// DeepER-like: token blocking for candidates, then a trained linear model
/// over embedding/similarity features. `truth` supplies the labeled
/// training pairs (the paper's 2:1 train/test split); training pairs are
/// sampled with `seed`.
BaselineReport RunMlMatcher(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config,
                            const GroundTruth& truth, uint64_t seed,
                            MatchContext* out);

/// SparkER-like: schema-agnostic token blocking over all compare attributes,
/// meta-blocking edge pruning (keep candidate pairs whose co-occurrence
/// weight is above the mean), then a Jaccard match decision.
BaselineReport RunMetaBlocking(const Dataset& dataset,
                               const std::vector<RelationHint>& hints,
                               const BaselineConfig& config,
                               MatchContext* out);

/// DisDedup-like: the same comparator as RunBlocking but with blocks
/// distributed across `config.num_workers` threads (triangle-style worker
/// assignment), reporting parallel wall-clock.
BaselineReport RunDistDedup(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config, MatchContext* out);

/// ERBlox-like hybrid: MD-style blocking keys (the hint's block attribute)
/// for candidate generation plus a trained ML classifier for the decision.
BaselineReport RunHybrid(const Dataset& dataset,
                         const std::vector<RelationHint>& hints,
                         const BaselineConfig& config,
                         const GroundTruth& truth, uint64_t seed,
                         MatchContext* out);

}  // namespace dcer

#endif  // DCER_BASELINES_MATCHERS_H_
