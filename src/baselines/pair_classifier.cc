#include "baselines/pair_classifier.h"

#include "ml/similarity.h"

namespace dcer {

double AttrSimilarity(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return 0;
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return EditSimilarity(a.AsString(), b.AsString());
  }
  if (a.type() != ValueType::kString && b.type() != ValueType::kString) {
    return NumericSimilarity(a.AsDouble(), b.AsDouble(), 0.05);
  }
  return a == b ? 1.0 : 0.0;
}

double TupleSimilarity(const Dataset& dataset, Gid a, Gid b,
                       const std::vector<size_t>& attrs) {
  if (attrs.empty()) return 0;
  const Row& ra = dataset.tuple(a);
  const Row& rb = dataset.tuple(b);
  double total = 0;
  for (size_t attr : attrs) total += AttrSimilarity(ra[attr], rb[attr]);
  return total / static_cast<double>(attrs.size());
}

}  // namespace dcer
