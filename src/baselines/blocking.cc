#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/timer.h"

namespace dcer {

BaselineReport RunBlocking(const Dataset& dataset,
                           const std::vector<RelationHint>& hints,
                           const BaselineConfig& config, MatchContext* out) {
  Timer timer;
  BaselineReport report;
  for (const RelationHint& hint : hints) {
    baselines_internal::ForEachBlockedPair(
        dataset, hint, config.max_block, [&](Gid a, Gid b) {
          ++report.comparisons;
          if (TupleSimilarity(dataset, a, b, hint.compare_attrs) >=
              config.threshold) {
            if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
          }
        });
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
