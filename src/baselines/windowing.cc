#include <algorithm>
#include <cstdio>

#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/timer.h"

namespace dcer {

BaselineReport RunWindowing(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config, MatchContext* out) {
  Timer timer;
  BaselineReport report;
  for (const RelationHint& hint : hints) {
    // Sort all candidate tuples (both relations for two-source tasks) by the
    // rendered sort key, then compare within the sliding window.
    std::vector<std::pair<std::string, Gid>> keyed;
    auto add_relation = [&](size_t rel) {
      const Relation& relation = dataset.relation(rel);
      // One columnar slice per relation: strings render straight from the
      // arena, numerics format from the flat typed vectors (same text the
      // Value path produced — %g and to_string are already lower-case).
      const Column& col = relation.column(hint.sort_attr);
      for (size_t row = 0; row < relation.num_rows(); ++row) {
        std::string key;
        if (!col.is_null(row)) {
          switch (col.type()) {
            case ValueType::kString:
              key = ToLower(col.str_at(row, relation.pool()));
              break;
            case ValueType::kInt:
              key = std::to_string(col.int_at(row));
              break;
            case ValueType::kDouble: {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%g", col.double_at(row));
              key = buf;
              break;
            }
            case ValueType::kNull:
              break;
          }
        }
        keyed.push_back({std::move(key), relation.gid(row)});
      }
    };
    add_relation(hint.relation);
    if (hint.pair_relation >= 0) {
      add_relation(static_cast<size_t>(hint.pair_relation));
    }
    std::sort(keyed.begin(), keyed.end());
    for (size_t i = 0; i < keyed.size(); ++i) {
      for (size_t j = i + 1; j < keyed.size() && j <= i + config.window; ++j) {
        Gid a = keyed[i].second;
        Gid b = keyed[j].second;
        bool cross = dataset.relation_of(a) != dataset.relation_of(b);
        if (hint.pair_relation >= 0 ? !cross : cross) continue;
        ++report.comparisons;
        if (TupleSimilarity(dataset, a, b, hint.compare_attrs) >=
            config.threshold) {
          if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
        }
      }
    }
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
