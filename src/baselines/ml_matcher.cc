#include <memory>

#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/timer.h"
#include "ml/classifier.h"

namespace dcer {

namespace {

// Trains a LearnedPairClassifier on labeled pairs sampled from the ground
// truth (the experiments' 2:1 train/test protocol).
std::unique_ptr<LearnedPairClassifier> TrainClassifier(
    const Dataset& dataset, const std::vector<RelationHint>& hints,
    const GroundTruth& truth, uint64_t seed) {
  auto model = std::make_unique<LearnedPairClassifier>("baseline-ml", 0.5);
  auto labeled = truth.SampleLabeledPairs(dataset, 200, 400, seed);
  if (labeled.empty()) return model;
  std::vector<std::vector<double>> features;
  std::vector<bool> labels;
  auto values_of = [&](Gid g) {
    std::vector<Value> vals;
    const Row& row = dataset.tuple(g);
    // Use the compare attributes of the tuple's relation hint if available,
    // else all attributes.
    for (const RelationHint& h : hints) {
      if (h.relation == dataset.relation_of(g) ||
          (h.pair_relation >= 0 &&
           static_cast<uint32_t>(h.pair_relation) == dataset.relation_of(g))) {
        for (size_t attr : h.compare_attrs) vals.push_back(row[attr]);
        return vals;
      }
    }
    vals = row;
    return vals;
  };
  for (const auto& [pair, label] : labeled) {
    features.push_back(LearnedPairClassifier::Features(values_of(pair.first),
                                                       values_of(pair.second)));
    labels.push_back(label);
  }
  model->Train(features, labels, 15);
  return model;
}

}  // namespace

BaselineReport RunMlMatcher(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config,
                            const GroundTruth& truth, uint64_t seed,
                            MatchContext* out) {
  Timer timer;
  BaselineReport report;
  std::unique_ptr<LearnedPairClassifier> model =
      TrainClassifier(dataset, hints, truth, seed);
  for (const RelationHint& hint : hints) {
    auto values_of = [&](Gid g) {
      std::vector<Value> vals;
      const Row& row = dataset.tuple(g);
      for (size_t attr : hint.compare_attrs) vals.push_back(row[attr]);
      return vals;
    };
    baselines_internal::ForEachTokenPair(
        dataset, hint, config.max_block, [&](Gid a, Gid b, int weight) {
          if (weight < 2) return;  // require at least two shared tokens
          ++report.comparisons;
          if (model->Predict(values_of(a), values_of(b))) {
            if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
          }
        });
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

BaselineReport RunHybrid(const Dataset& dataset,
                         const std::vector<RelationHint>& hints,
                         const BaselineConfig& config,
                         const GroundTruth& truth, uint64_t seed,
                         MatchContext* out) {
  Timer timer;
  BaselineReport report;
  std::unique_ptr<LearnedPairClassifier> model =
      TrainClassifier(dataset, hints, truth, seed);
  for (const RelationHint& hint : hints) {
    auto values_of = [&](Gid g) {
      std::vector<Value> vals;
      const Row& row = dataset.tuple(g);
      for (size_t attr : hint.compare_attrs) vals.push_back(row[attr]);
      return vals;
    };
    baselines_internal::ForEachBlockedPair(
        dataset, hint, config.max_block, [&](Gid a, Gid b) {
          ++report.comparisons;
          if (model->Predict(values_of(a), values_of(b))) {
            if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
          }
        });
  }
  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
