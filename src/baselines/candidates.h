#ifndef DCER_BASELINES_CANDIDATES_H_
#define DCER_BASELINES_CANDIDATES_H_

// Internal candidate-generation helpers shared by the baseline matchers.

#include <unordered_map>

#include "baselines/pair_classifier.h"
#include "chase/inverted_index.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace dcer::baselines_internal {

/// Blocks keyed by the columnar equality code (interned string id / int
/// bits / canonicalized double bits): within one column type, code equality
/// is Value equality, and relations of a Dataset share the interning pool,
/// so cross-relation string joins stay an id == id comparison.
using BlockMap = std::unordered_map<uint64_t, std::vector<Gid>, CodeHash>;

inline BlockMap BuildBlocks(const Dataset& d, size_t rel, size_t attr) {
  BlockMap blocks;
  const Relation& relation = d.relation(rel);
  uint64_t code;
  for (size_t row = 0; row < relation.num_rows(); ++row) {
    if (JoinableCellCode(relation, static_cast<uint32_t>(row), attr, &code)) {
      blocks[code].push_back(relation.gid(row));
    }
  }
  return blocks;
}

/// Exact-blocking candidate pairs for one hint: within-block pairs of the
/// hint's relation, or cross pairs against pair_relation for two-source
/// tasks. Oversized blocks are skipped (as deployed blockers do).
template <typename F>
void ForEachBlockedPair(const Dataset& d, const RelationHint& hint,
                        size_t max_block, F&& cb) {
  BlockMap left = BuildBlocks(d, hint.relation, hint.block_attr);
  if (hint.pair_relation < 0) {
    for (const auto& [_, gids] : left) {
      if (gids.size() > max_block) continue;
      for (size_t i = 0; i < gids.size(); ++i) {
        for (size_t j = i + 1; j < gids.size(); ++j) cb(gids[i], gids[j]);
      }
    }
    return;
  }
  // Codes are only comparable within one column type; mismatched types never
  // blocked together under Value equality either.
  if (d.relation(hint.relation).column(hint.block_attr).type() !=
      d.relation(static_cast<size_t>(hint.pair_relation))
          .column(hint.block_attr)
          .type()) {
    return;
  }
  BlockMap right = BuildBlocks(d, static_cast<size_t>(hint.pair_relation),
                               hint.block_attr);
  for (const auto& [value, lg] : left) {
    auto it = right.find(value);
    if (it == right.end()) continue;
    if (lg.size() * it->second.size() > max_block * max_block) continue;
    for (Gid a : lg) {
      for (Gid b : it->second) cb(a, b);
    }
  }
}

/// Token blocking: lower-cased whitespace tokens of the compare attributes
/// map tuples to blocks; pairs sharing tokens are candidates weighted by the
/// number of shared blocks. cb(a, b, weight); same-relation pairs only
/// (or cross pairs for two-source hints).
template <typename F>
void ForEachTokenPair(const Dataset& d, const RelationHint& hint,
                      size_t max_block, F&& cb) {
  std::unordered_map<std::string, std::vector<Gid>> token_blocks;
  auto index_relation = [&](size_t rel) {
    const Relation& relation = d.relation(rel);
    for (size_t row = 0; row < relation.num_rows(); ++row) {
      for (size_t attr : hint.compare_attrs) {
        const Column& col = relation.column(attr);
        if (col.type() != ValueType::kString || col.is_null(row)) continue;
        std::string_view text = col.str_at(row, relation.pool());
        for (const std::string& tok : SplitWhitespace(ToLower(text))) {
          if (tok.size() < 2) continue;
          token_blocks[tok].push_back(relation.gid(row));
        }
      }
    }
  };
  index_relation(hint.relation);
  if (hint.pair_relation >= 0) {
    index_relation(static_cast<size_t>(hint.pair_relation));
  }

  // Accumulate pair weights (#shared tokens).
  std::unordered_map<uint64_t, std::pair<std::pair<Gid, Gid>, int>> weights;
  for (const auto& [_, gids] : token_blocks) {
    if (gids.size() > max_block) continue;
    for (size_t i = 0; i < gids.size(); ++i) {
      for (size_t j = i + 1; j < gids.size(); ++j) {
        Gid a = std::min(gids[i], gids[j]);
        Gid b = std::max(gids[i], gids[j]);
        if (a == b) continue;
        bool cross = d.relation_of(a) != d.relation_of(b);
        if (hint.pair_relation >= 0 ? !cross : cross) continue;
        uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
        auto [it, inserted] = weights.try_emplace(key, std::make_pair(a, b), 0);
        ++it->second.second;
      }
    }
  }
  for (const auto& [_, entry] : weights) {
    cb(entry.first.first, entry.first.second, entry.second);
  }
}

}  // namespace dcer::baselines_internal

#endif  // DCER_BASELINES_CANDIDATES_H_
