#ifndef DCER_BASELINES_PAIR_CLASSIFIER_H_
#define DCER_BASELINES_PAIR_CLASSIFIER_H_

#include "chase/match_context.h"
#include "datagen/gen_dataset.h"

namespace dcer {

/// Shared configuration of the single-pass baselines (Sec. VI "Baselines").
/// Each baseline performs one sweep of pairwise comparisons — no recursion,
/// no cross-relation joins — which is exactly the gap deep/collective ER
/// closes (so their recall ceiling on deep-tier duplicates is structural).
struct BaselineConfig {
  double threshold = 0.70;  // similarity accept threshold
  size_t window = 6;        // sorted-neighborhood window
  size_t max_block = 512;   // skip oversized blocks (as real systems do)
  int num_workers = 4;      // DisDedup-like parallel matcher
};

/// Outcome counters of one baseline run.
struct BaselineReport {
  double seconds = 0;
  uint64_t comparisons = 0;
  uint64_t matches = 0;
};

/// Per-attribute similarity: edit similarity for strings, relative-tolerance
/// agreement for numbers, exact match otherwise; NULLs score 0.
double AttrSimilarity(const Value& a, const Value& b);

/// Mean AttrSimilarity over the hint's compare attributes.
double TupleSimilarity(const Dataset& dataset, Gid a, Gid b,
                       const std::vector<size_t>& attrs);

}  // namespace dcer

#endif  // DCER_BASELINES_PAIR_CLASSIFIER_H_
