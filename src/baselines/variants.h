#ifndef DCER_BASELINES_VARIANTS_H_
#define DCER_BASELINES_VARIANTS_H_

#include "rules/rule.h"

namespace dcer {

/// DMatch_C (collective-only): drops every rule carrying an id predicate in
/// its precondition — no recursion, valuations may still span many tables.
RuleSet CollectiveOnlyRules(const RuleSet& rules);

/// DMatch_D (deep-only): keeps only rules with at most `max_vars` tuple
/// variables (the experiments use 4), since real-life quality rules rarely
/// exceed 3-4 variables; recursion via id preconditions stays allowed.
RuleSet DeepOnlyRules(const RuleSet& rules, size_t max_vars = 4);

}  // namespace dcer

#endif  // DCER_BASELINES_VARIANTS_H_
