#include <algorithm>
#include <utility>
#include <vector>

#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace dcer {

BaselineReport RunDistDedup(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config, MatchContext* out) {
  Timer timer;
  BaselineReport report;
  // Materialize candidate pairs, then distribute them across workers in
  // round-robin "triangle" shards (DisDedup balances the pairwise workload
  // across all workers).
  std::vector<std::pair<Gid, Gid>> candidates;
  std::vector<const RelationHint*> pair_hint;
  for (const RelationHint& hint : hints) {
    baselines_internal::ForEachBlockedPair(dataset, hint, config.max_block,
                                           [&](Gid a, Gid b) {
                                             candidates.push_back({a, b});
                                             pair_hint.push_back(&hint);
                                           });
  }
  report.comparisons = candidates.size();

  // Contiguous chunks on the shared pool, 4 per worker so stealing can
  // rebalance blocks of uneven similarity cost. Each chunk fills a private
  // match buffer; a single ordered pass applies them afterwards, so the
  // result (and the first-writer-wins Apply semantics) is deterministic and
  // the sweep itself runs mutex-free.
  const size_t grain = std::max<size_t>(
      1, candidates.size() /
             (static_cast<size_t>(std::max(config.num_workers, 1)) * 4));
  const size_t num_chunks = (candidates.size() + grain - 1) / grain;
  std::vector<std::vector<std::pair<Gid, Gid>>> chunk_matches(num_chunks);
  ThreadPool::Global().ParallelFor(
      0, candidates.size(), grain, [&](size_t lo, size_t hi) {
        std::vector<std::pair<Gid, Gid>>& local = chunk_matches[lo / grain];
        for (size_t i = lo; i < hi; ++i) {
          auto [a, b] = candidates[i];
          if (TupleSimilarity(dataset, a, b, pair_hint[i]->compare_attrs) >=
              config.threshold) {
            local.push_back({a, b});
          }
        }
      });
  for (const auto& chunk : chunk_matches) {
    for (auto [a, b] : chunk) {
      if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
    }
  }

  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
