#include <mutex>
#include <thread>

#include "baselines/candidates.h"
#include "baselines/matchers.h"
#include "common/timer.h"

namespace dcer {

BaselineReport RunDistDedup(const Dataset& dataset,
                            const std::vector<RelationHint>& hints,
                            const BaselineConfig& config, MatchContext* out) {
  Timer timer;
  BaselineReport report;
  // Materialize candidate pairs, then distribute them across workers in
  // round-robin "triangle" shards (DisDedup balances the pairwise workload
  // across all workers).
  std::vector<std::pair<Gid, Gid>> candidates;
  std::vector<const RelationHint*> pair_hint;
  for (const RelationHint& hint : hints) {
    baselines_internal::ForEachBlockedPair(dataset, hint, config.max_block,
                                           [&](Gid a, Gid b) {
                                             candidates.push_back({a, b});
                                             pair_hint.push_back(&hint);
                                           });
  }
  report.comparisons = candidates.size();

  std::mutex mutex;
  auto work = [&](int worker) {
    std::vector<std::pair<Gid, Gid>> local_matches;
    for (size_t i = worker; i < candidates.size();
         i += static_cast<size_t>(config.num_workers)) {
      auto [a, b] = candidates[i];
      if (TupleSimilarity(dataset, a, b, pair_hint[i]->compare_attrs) >=
          config.threshold) {
        local_matches.push_back({a, b});
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    for (auto [a, b] : local_matches) {
      if (out->Apply(Fact::IdMatch(a, b), nullptr)) ++report.matches;
    }
  };
  std::vector<std::thread> threads;
  for (int w = 0; w < config.num_workers; ++w) threads.emplace_back(work, w);
  for (auto& t : threads) t.join();

  report.seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace dcer
