#include "relational/value.h"

#include <charconv>
#include <cstdio>

namespace dcer {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

uint64_t Value::Hash(uint64_t seed) const {
  switch (v_.index()) {
    case 0:
      return HashInt(0x6e756c6cULL, seed);  // "null"
    case 1:
      return HashInt(static_cast<uint64_t>(std::get<int64_t>(v_)), seed + 1);
    case 2: {
      double d = std::get<double>(v_);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return HashInt(bits, seed + 2);
    }
    default:
      // Content hash: an interned string hashes identically to an owned copy.
      return HashString(AsString(), seed + 3);
  }
}

std::string Value::ToString() const {
  switch (v_.index()) {
    case 0:
      return "-";
    case 1:
      return std::to_string(std::get<int64_t>(v_));
    case 2: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
      return buf;
    }
    default:
      return std::string(AsString());
  }
}

Value Value::Parse(std::string_view text, ValueType type) {
  if (text.empty() || text == "-") return Value::Null();
  switch (type) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Value::Null();
      }
      return Value(v);
    }
    case ValueType::kDouble: {
      // std::from_chars for double is available in GCC 11+.
      double v = 0;
      auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Value::Null();
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(std::string(text));
  }
  return Value::Null();
}

}  // namespace dcer
