#ifndef DCER_RELATIONAL_STRING_POOL_H_
#define DCER_RELATIONAL_STRING_POOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dcer {

/// Append-only string interning pool: every distinct string is stored once in
/// a chunked char arena and addressed by a dense 32-bit id. A Dataset owns one
/// pool shared by all of its relations, so equal strings in different columns
/// (the join targets of Sec. II's equality predicates) get equal ids and
/// equality joins reduce to id == id.
///
/// Concurrency contract, matching the chase's phase structure:
///  - Intern() (writers) are serialized; they only ever run between
///    enumeration phases (dataset loads, NotifyAppend between supersteps).
///  - view() / size() are lock-free and safe concurrently with one writer:
///    ids are published with release/acquire ordering and arena chunks are
///    append-only, so a published id's bytes never move.
///  - Find() takes a shared lock (it probes the dedup map); concurrent
///    readers never block each other.
class StringPool {
 public:
  /// Sentinel id: "not in the pool" (also used as the NULL cell marker in
  /// string columns).
  static constexpr uint32_t kNpos = 0xffffffffu;

  StringPool() = default;
  StringPool(const StringPool&) = delete;
  StringPool& operator=(const StringPool&) = delete;

  /// Returns the id of `s`, interning it if absent. Ids are dense and stable
  /// for the lifetime of the pool.
  uint32_t Intern(std::string_view s);

  /// Id of `s` if already interned, kNpos otherwise. Never inserts — lookup
  /// misses mean "this constant matches no stored string", an O(1) rejection
  /// the equality-join fast path exploits.
  uint32_t Find(std::string_view s) const;

  /// The characters of the interned string `id`. Lock-free; the returned view
  /// is valid for the lifetime of the pool (chunks are never reallocated).
  std::string_view view(uint32_t id) const {
    const Entry& e = entry(id);
    return std::string_view(e.data, e.len);
  }

  /// Number of distinct interned strings.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// --- Stats for the bench keys (interning hit rate / footprint). ---
  /// Total Intern() calls and how many were dedup hits.
  uint64_t num_requests() const { return requests_; }
  uint64_t num_hits() const { return hits_; }
  /// Characters held by the arena (what the strings cost once, deduped).
  size_t arena_bytes() const { return arena_bytes_.load(std::memory_order_relaxed); }
  /// Characters that Intern() was asked to store, counting duplicates — what
  /// row-wise owned-string storage would have paid.
  uint64_t requested_bytes() const { return requested_bytes_; }
  /// Approximate total footprint: arena + entry table + dedup map.
  size_t ByteSize() const;

 private:
  struct Entry {
    const char* data;
    uint32_t len;
  };

  // Entry table: doubling blocks behind pre-sized atomic pointers, so view()
  // needs no lock and no published entry ever moves. Block b holds
  // kFirstBlock << b entries and starts at id (2^b - 1) * kFirstBlock.
  static constexpr uint32_t kFirstBlockLog2 = 10;  // 1024 entries
  static constexpr uint32_t kFirstBlock = 1u << kFirstBlockLog2;
  static constexpr uint32_t kMaxBlocks = 21;  // ~2.1B ids

  const Entry& entry(uint32_t id) const {
    const uint32_t u = (id >> kFirstBlockLog2) + 1;
    const uint32_t block = 31 - static_cast<uint32_t>(__builtin_clz(u));
    const uint32_t offset = id - ((1u << block) - 1) * kFirstBlock;
    return blocks_[block].load(std::memory_order_acquire)[offset];
  }

  // Appends the bytes of `s` to the arena; returns a stable pointer.
  const char* ArenaAppend(std::string_view s);

  mutable std::shared_mutex mu_;  // guards map_, chunk list, block allocation
  std::unordered_map<std::string_view, uint32_t> map_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = 0;
  size_t chunk_cap_ = 0;
  std::array<std::atomic<Entry*>, kMaxBlocks> blocks_ = {};
  std::vector<std::unique_ptr<Entry[]>> block_storage_;
  std::atomic<size_t> size_{0};
  std::atomic<size_t> arena_bytes_{0};
  uint64_t requests_ = 0;
  uint64_t hits_ = 0;
  uint64_t requested_bytes_ = 0;
};

}  // namespace dcer

#endif  // DCER_RELATIONAL_STRING_POOL_H_
