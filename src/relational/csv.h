#ifndef DCER_RELATIONAL_CSV_H_
#define DCER_RELATIONAL_CSV_H_

#include <string>

#include "common/status.h"
#include "relational/dataset.h"

namespace dcer {

/// Loads rows from a CSV file (with a header line naming the columns) into
/// relation `rel` of `dataset`. Columns are matched to schema attributes by
/// header name; missing attributes become NULL; extra columns are ignored.
/// Supports RFC-4180 quoting ("" escapes a quote inside a quoted field).
Status LoadCsv(const std::string& path, Dataset* dataset, size_t rel);

/// Writes relation `rel` of `dataset` to `path` as CSV with a header line.
Status SaveCsv(const std::string& path, const Dataset& dataset, size_t rel);

/// Parses a single CSV line into fields (exposed for testing).
std::vector<std::string> ParseCsvLine(const std::string& line);

}  // namespace dcer

#endif  // DCER_RELATIONAL_CSV_H_
