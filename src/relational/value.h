#ifndef DCER_RELATIONAL_VALUE_H_
#define DCER_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace dcer {

/// Attribute domains (Sec. II "Datasets": each attribute has a type).
enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

const char* ValueTypeName(ValueType type);

/// A typed cell value. Small, copyable, hashable. operator== is structural
/// (NULL == NULL is true); join predicates in rules use EqJoinable() below,
/// which is SQL-like: NULL never satisfies an equality predicate.
///
/// Strings come in two physically different but semantically identical
/// flavors: an owning std::string (constants, parsed input) and a non-owning
/// reference into a Dataset's interning pool (what columnar Relations hand
/// out — 16 bytes, no allocation). Both report ValueType::kString and
/// compare/hash by content, so consumers never need to tell them apart. An
/// interned Value is valid for the lifetime of the pool it points into.
class Value {
 public:
  /// Non-owning reference to an interned string (see StringPool). `id` is the
  /// pool-local interning id; kNoId when unknown.
  struct InternedString {
    const char* data;
    uint32_t len;
    uint32_t id;

    std::string_view view() const { return std::string_view(data, len); }
    // Content comparisons (required by the variant; Value pre-dispatches
    // string comparisons itself, treating owned and interned alike).
    bool operator==(const InternedString& o) const { return view() == o.view(); }
    bool operator<(const InternedString& o) const { return view() < o.view(); }
  };
  static constexpr uint32_t kNoId = 0xffffffffu;  // == StringPool::kNpos

  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  /// A Value viewing an interned string; does not copy the characters.
  static Value Interned(std::string_view s, uint32_t id) {
    Value v;
    v.v_ = InternedString{s.data(), static_cast<uint32_t>(s.size()), id};
    return v;
  }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;  // owned or interned
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (v_.index() == 1) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  std::string_view AsString() const {
    if (v_.index() == 4) {
      const InternedString& s = std::get<InternedString>(v_);
      return std::string_view(s.data, s.len);
    }
    return std::get<std::string>(v_);
  }

  /// Interning id if this is an interned string, kNoId otherwise.
  uint32_t intern_id() const {
    return v_.index() == 4 ? std::get<InternedString>(v_).id : kNoId;
  }

  bool operator==(const Value& other) const {
    const bool s1 = v_.index() >= 3;
    const bool s2 = other.v_.index() >= 3;
    if (s1 || s2) return s1 && s2 && AsString() == other.AsString();
    return v_ == other.v_;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const {
    // Order by type rank first (both string flavors rank equal), preserving
    // the historical variant ordering int < double regardless of magnitude.
    const size_t r1 = v_.index() >= 3 ? 3 : v_.index();
    const size_t r2 = other.v_.index() >= 3 ? 3 : other.v_.index();
    if (r1 != r2) return r1 < r2;
    if (r1 == 3) return AsString() < other.AsString();
    return v_ < other.v_;
  }

  /// Deterministic 64-bit hash, stable across runs (used by Hypercube).
  /// Owned and interned strings with equal content hash equal.
  uint64_t Hash(uint64_t seed = 0) const;

  /// Display rendering; NULL renders as "-" like the paper's tables.
  std::string ToString() const;

  /// Parses `text` as the given type. Empty or "-" parses to NULL.
  static Value Parse(std::string_view text, ValueType type);

 private:
  std::variant<std::monostate, int64_t, double, std::string, InternedString>
      v_;
};

/// Equality as used by rule predicates t.A = s.B and t.A = c: false whenever
/// either side is NULL (missing data never certifies a match).
inline bool EqJoinable(const Value& a, const Value& b) {
  return !a.is_null() && !b.is_null() && a == b;
}

}  // namespace dcer

#endif  // DCER_RELATIONAL_VALUE_H_
