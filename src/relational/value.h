#ifndef DCER_RELATIONAL_VALUE_H_
#define DCER_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"

namespace dcer {

/// Attribute domains (Sec. II "Datasets": each attribute has a type).
enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

const char* ValueTypeName(ValueType type);

/// A typed cell value. Small, copyable, hashable. operator== is structural
/// (NULL == NULL is true); join predicates in rules use EqJoinable() below,
/// which is SQL-like: NULL never satisfies an equality predicate.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (v_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return v_.index() == 0; }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const {
    if (v_.index() == 1) return static_cast<double>(std::get<int64_t>(v_));
    return std::get<double>(v_);
  }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  /// Deterministic 64-bit hash, stable across runs (used by Hypercube).
  uint64_t Hash(uint64_t seed = 0) const;

  /// Display rendering; NULL renders as "-" like the paper's tables.
  std::string ToString() const;

  /// Parses `text` as the given type. Empty or "-" parses to NULL.
  static Value Parse(std::string_view text, ValueType type);

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// Equality as used by rule predicates t.A = s.B and t.A = c: false whenever
/// either side is NULL (missing data never certifies a match).
inline bool EqJoinable(const Value& a, const Value& b) {
  return !a.is_null() && !b.is_null() && a == b;
}

}  // namespace dcer

#endif  // DCER_RELATIONAL_VALUE_H_
