#include "relational/dataset.h"

#include <cassert>

namespace dcer {

size_t Dataset::AddRelation(Schema schema) {
  assert(name_to_index_.find(schema.name()) == name_to_index_.end());
  name_to_index_[schema.name()] = relations_.size();
  relations_.emplace_back(std::move(schema), pool_.get());
  return relations_.size() - 1;
}

int Dataset::RelationIndex(std::string_view name) const {
  auto it = name_to_index_.find(std::string(name));
  return it == name_to_index_.end() ? -1 : static_cast<int>(it->second);
}

size_t Dataset::RelationIndexOrDie(std::string_view name) const {
  int idx = RelationIndex(name);
  assert(idx >= 0 && "unknown relation");
  return static_cast<size_t>(idx);
}

Gid Dataset::AppendTuple(size_t rel, Row row) {
  assert(rel < relations_.size());
  Gid gid = static_cast<Gid>(gid_to_loc_.size());
  size_t row_idx = relations_[rel].Append(std::move(row), gid);
  gid_to_loc_.push_back(
      {static_cast<uint32_t>(rel), static_cast<uint32_t>(row_idx)});
  return gid;
}

Gid Dataset::AppendParsedTuple(size_t rel,
                               const std::vector<std::string>& fields,
                               const std::vector<int>& attr_to_field) {
  assert(rel < relations_.size());
  Gid gid = static_cast<Gid>(gid_to_loc_.size());
  size_t row_idx = relations_[rel].AppendParsed(fields, attr_to_field, gid);
  gid_to_loc_.push_back(
      {static_cast<uint32_t>(rel), static_cast<uint32_t>(row_idx)});
  return gid;
}

size_t Dataset::ByteSize() const {
  size_t bytes = pool_->ByteSize();
  bytes += gid_to_loc_.capacity() * sizeof(TupleLoc);
  for (const Relation& r : relations_) bytes += r.ByteSize();
  return bytes;
}

std::string Dataset::ToString() const {
  std::string out = "D(";
  for (size_t i = 0; i < relations_.size(); ++i) {
    if (i > 0) out += ", ";
    out += relations_[i].schema().name();
    out += ":";
    out += std::to_string(relations_[i].num_rows());
  }
  out += ")";
  return out;
}

}  // namespace dcer
