#include "relational/csv.h"

#include <fstream>

#include "common/string_util.h"

namespace dcer {

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

namespace {
std::string EscapeCsvField(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}
}  // namespace

Status LoadCsv(const std::string& path, Dataset* dataset, size_t rel) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) return Status::Corruption("empty CSV: " + path);

  const Schema& schema = dataset->relation(rel).schema();
  std::vector<std::string> header = ParseCsvLine(line);
  // Attribute a is fed from file column attr_to_field[a] (-1 => NULL), so
  // each parsed line streams straight into the typed columns without
  // materializing a Row of owning Values.
  std::vector<int> attr_to_field(schema.num_attrs(), -1);
  for (size_t j = 0; j < header.size(); ++j) {
    int a = schema.AttrIndex(std::string(Trim(header[j])));
    if (a >= 0) attr_to_field[a] = static_cast<int>(j);
  }

  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    dataset->AppendParsedTuple(rel, fields, attr_to_field);
  }
  return Status::OK();
}

Status SaveCsv(const std::string& path, const Dataset& dataset, size_t rel) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  const Relation& r = dataset.relation(rel);
  const Schema& schema = r.schema();
  for (size_t a = 0; a < schema.num_attrs(); ++a) {
    if (a > 0) out << ',';
    out << EscapeCsvField(schema.attr(a).name);
  }
  out << '\n';
  for (size_t i = 0; i < r.num_rows(); ++i) {
    for (size_t a = 0; a < schema.num_attrs(); ++a) {
      if (a > 0) out << ',';
      const Value& v = r.at(i, a);
      out << EscapeCsvField(v.is_null() ? "" : v.ToString());
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace dcer
