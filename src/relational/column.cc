#include "relational/column.h"

#include <charconv>

namespace dcer {

namespace {

template <typename T>
void ReserveTracked(std::vector<T>* v, size_t n) {
  v->reserve(v->size() + n);
}

// push_back that counts capacity growths (the generator Reserve audit).
template <typename T>
void PushTracked(std::vector<T>* v, T value, uint64_t* grow_events) {
  if (v->size() == v->capacity()) ++*grow_events;
  v->push_back(value);
}

}  // namespace

void Column::Reserve(size_t n) {
  switch (type_) {
    case ValueType::kInt:
      ReserveTracked(&ints_, n);
      break;
    case ValueType::kDouble:
      ReserveTracked(&doubles_, n);
      break;
    case ValueType::kString:
      ReserveTracked(&strs_, n);
      break;
    case ValueType::kNull:
      break;
  }
  nulls_.reserve((size_ + n + 63) / 64);
}

void Column::AppendNullBit(bool is_null) {
  if ((size_ & 63) == 0) nulls_.push_back(0);
  if (is_null) nulls_.back() |= 1ull << (size_ & 63);
  ++size_;
}

void Column::Append(const Value& v, StringPool* pool) {
  const bool null = v.is_null();
  assert(null || v.type() == type_);
  switch (type_) {
    case ValueType::kInt:
      PushTracked(&ints_, null ? int64_t{0} : v.AsInt(), &grow_events_);
      break;
    case ValueType::kDouble: {
      double d = null ? 0.0 : v.AsDouble();
      if (d == 0.0) d = 0.0;  // canonicalize -0.0 for bit-pattern codes
      PushTracked(&doubles_, d, &grow_events_);
      break;
    }
    case ValueType::kString:
      PushTracked(&strs_,
                  null ? StringPool::kNpos : pool->Intern(v.AsString()),
                  &grow_events_);
      break;
    case ValueType::kNull:
      break;
  }
  AppendNullBit(null);
}

void Column::AppendParsed(std::string_view text, StringPool* pool) {
  const bool empty = text.empty() || text == "-";
  switch (type_) {
    case ValueType::kInt: {
      int64_t v = 0;
      bool ok = false;
      if (!empty) {
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), v);
        ok = ec == std::errc() && ptr == text.data() + text.size();
      }
      PushTracked(&ints_, ok ? v : 0, &grow_events_);
      AppendNullBit(!ok);
      return;
    }
    case ValueType::kDouble: {
      double v = 0;
      bool ok = false;
      if (!empty) {
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), v);
        ok = ec == std::errc() && ptr == text.data() + text.size();
      }
      if (v == 0.0) v = 0.0;  // canonicalize -0.0
      PushTracked(&doubles_, ok ? v : 0.0, &grow_events_);
      AppendNullBit(!ok);
      return;
    }
    case ValueType::kString:
      if (empty) {
        PushTracked(&strs_, StringPool::kNpos, &grow_events_);
      } else {
        PushTracked(&strs_, pool->Intern(text), &grow_events_);
      }
      AppendNullBit(empty);
      return;
    case ValueType::kNull:
      AppendNullBit(true);
      return;
  }
}

size_t Column::ByteSize() const {
  return ints_.capacity() * sizeof(int64_t) +
         doubles_.capacity() * sizeof(double) +
         strs_.capacity() * sizeof(uint32_t) +
         nulls_.capacity() * sizeof(uint64_t);
}

}  // namespace dcer
