#ifndef DCER_RELATIONAL_SCHEMA_H_
#define DCER_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace dcer {

/// One attribute of a relation schema.
struct Attribute {
  std::string name;
  ValueType type;
};

/// Relation schema R(A1:τ1, ..., An:τn). Every relation additionally has a
/// designated entity identity (the paper's `id` attribute); we model it as
/// the tuple's global id rather than a stored column, so `t.id = s.id`
/// predicates operate on tuple identity.
class Schema {
 public:
  Schema() = default;
  Schema(std::string name, std::vector<Attribute> attrs)
      : name_(std::move(name)), attrs_(std::move(attrs)) {}

  const std::string& name() const { return name_; }
  size_t num_attrs() const { return attrs_.size(); }
  const Attribute& attr(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Index of the attribute with this name, or -1 if absent.
  int AttrIndex(std::string_view attr_name) const;

  /// True if attributes i of this schema and j of `other` have the same type
  /// (the compatibility requirement on t.A = s.B predicates).
  bool Compatible(size_t i, const Schema& other, size_t j) const {
    return attrs_[i].type == other.attrs_[j].type;
  }

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
};

}  // namespace dcer

#endif  // DCER_RELATIONAL_SCHEMA_H_
