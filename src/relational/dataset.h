#ifndef DCER_RELATIONAL_DATASET_H_
#define DCER_RELATIONAL_DATASET_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/relation.h"
#include "relational/string_pool.h"

namespace dcer {

/// Location of a tuple inside a dataset: (relation index, row index).
struct TupleLoc {
  uint32_t relation;
  uint32_t row;
  bool operator==(const TupleLoc&) const = default;
};

/// A dataset D = (D1, ..., Dm) of schema R = (R1, ..., Rm) (Sec. II).
/// Owns all relations and assigns dense global tuple ids, which the chase,
/// the partitioner, and the parallel runtime all key on. All relations share
/// one string interning pool, so equal strings anywhere in D have equal ids
/// and cross-relation equality joins compare ids.
class Dataset {
 public:
  Dataset() : pool_(std::make_unique<StringPool>()) {}

  // Movable but not copyable: datasets can be large. Relations keep raw
  // pointers into pool_, which stay valid across moves (the pool object
  // itself does not move).
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;

  /// Adds an empty relation with the given schema; returns its index.
  /// Schema names must be unique.
  size_t AddRelation(Schema schema);

  size_t num_relations() const { return relations_.size(); }
  const Relation& relation(size_t i) const { return relations_[i]; }
  const Relation& relation_by_name(std::string_view name) const {
    return relations_[RelationIndexOrDie(name)];
  }

  /// Index of the relation with this schema name, or -1 if absent.
  int RelationIndex(std::string_view name) const;
  size_t RelationIndexOrDie(std::string_view name) const;

  /// Appends a tuple to relation `rel`; returns its global id.
  Gid AppendTuple(size_t rel, Row row);

  /// Column-streaming append from parsed CSV fields (see
  /// Relation::AppendParsed); returns the global id.
  Gid AppendParsedTuple(size_t rel, const std::vector<std::string>& fields,
                        const std::vector<int>& attr_to_field);

  /// Reserves capacity for n more rows in relation `rel` (per column).
  void ReserveTuples(size_t rel, size_t n) { relations_[rel].Reserve(n); }

  /// Total number of tuples across all relations (|D|).
  size_t num_tuples() const { return gid_to_loc_.size(); }

  TupleLoc loc(Gid gid) const { return gid_to_loc_[gid]; }
  RowView tuple(Gid gid) const {
    TupleLoc l = gid_to_loc_[gid];
    return relations_[l.relation].row(l.row);
  }
  uint32_t relation_of(Gid gid) const { return gid_to_loc_[gid].relation; }

  /// The shared interning pool.
  const StringPool& pool() const { return *pool_; }
  StringPool* mutable_pool() { return pool_.get(); }

  /// Heap bytes held by all columns plus the interning pool.
  size_t ByteSize() const;

  /// Pretty one-line description: "D(customers:5, shops:5, ...)".
  std::string ToString() const;

 private:
  std::unique_ptr<StringPool> pool_;
  std::vector<Relation> relations_;
  std::unordered_map<std::string, size_t> name_to_index_;
  std::vector<TupleLoc> gid_to_loc_;
};

}  // namespace dcer

#endif  // DCER_RELATIONAL_DATASET_H_
