#include "relational/relation.h"

#include <cassert>

namespace dcer {

size_t Relation::Append(Row row, Gid gid) {
  assert(row.size() == schema_.num_attrs());
  rows_.push_back(std::move(row));
  gids_.push_back(gid);
  return rows_.size() - 1;
}

}  // namespace dcer
