#include "relational/relation.h"

#include <cassert>

namespace dcer {

Row RowView::ToRow() const {
  Row out;
  out.reserve(size());
  for (size_t a = 0; a < size(); ++a) out.push_back((*this)[a]);
  return out;
}

bool RowView::operator==(const RowView& other) const {
  if (size() != other.size()) return false;
  for (size_t a = 0; a < size(); ++a) {
    if ((*this)[a] != other[a]) return false;
  }
  return true;
}

bool RowView::operator==(const Row& other) const {
  if (size() != other.size()) return false;
  for (size_t a = 0; a < size(); ++a) {
    if ((*this)[a] != other[a]) return false;
  }
  return true;
}

Relation::Relation(Schema schema, StringPool* shared_pool)
    : schema_(std::move(schema)) {
  if (shared_pool == nullptr) {
    own_pool_ = std::make_unique<StringPool>();
    pool_ = own_pool_.get();
  } else {
    pool_ = shared_pool;
  }
  cols_.reserve(schema_.num_attrs());
  for (size_t a = 0; a < schema_.num_attrs(); ++a) {
    cols_.emplace_back(schema_.attr(a).type);
  }
}

size_t Relation::Append(Row row, Gid gid) {
  assert(row.size() == schema_.num_attrs());
  for (size_t a = 0; a < cols_.size(); ++a) {
    cols_[a].Append(row[a], pool_);
  }
  gids_.push_back(gid);
  return gids_.size() - 1;
}

size_t Relation::AppendParsed(const std::vector<std::string>& fields,
                              const std::vector<int>& attr_to_field,
                              Gid gid) {
  assert(attr_to_field.size() == cols_.size());
  for (size_t a = 0; a < cols_.size(); ++a) {
    const int f = attr_to_field[a];
    if (f < 0 || static_cast<size_t>(f) >= fields.size()) {
      cols_[a].AppendParsed(std::string_view(), pool_);
    } else {
      cols_[a].AppendParsed(fields[f], pool_);
    }
  }
  gids_.push_back(gid);
  return gids_.size() - 1;
}

void Relation::Reserve(size_t n) {
  for (Column& c : cols_) c.Reserve(n);
  gids_.reserve(gids_.size() + n);
}

size_t Relation::ByteSize() const {
  size_t bytes = gids_.capacity() * sizeof(Gid);
  for (const Column& c : cols_) bytes += c.ByteSize();
  return bytes;
}

uint64_t Relation::grow_events() const {
  uint64_t n = 0;
  for (const Column& c : cols_) n += c.grow_events();
  return n;
}

}  // namespace dcer
