#ifndef DCER_RELATIONAL_COLUMN_H_
#define DCER_RELATIONAL_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <string_view>
#include <vector>

#include "relational/string_pool.h"
#include "relational/value.h"

namespace dcer {

/// One attribute's cells across all rows of a Relation, stored contiguously
/// by type: int64/double as flat vectors, strings as 32-bit interning ids
/// into the dataset's StringPool, plus a null bitmap. This is the columnar
/// half of the storage refactor — index builds and kernel probes scan one
/// cache-friendly slice instead of striding over row-wise variant vectors.
class Column {
 public:
  Column() : type_(ValueType::kNull) {}
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return size_; }

  void Reserve(size_t n);

  /// Appends one cell. `v` must be NULL or match the column type; string
  /// payloads are interned into `pool`. -0.0 is canonicalized to +0.0 so the
  /// bit-pattern equality codes below agree with operator== on doubles.
  void Append(const Value& v, StringPool* pool);

  /// Appends a cell parsed from CSV text (empty or "-" is NULL) without
  /// materializing an owning Value — the loader's column-streaming path.
  void AppendParsed(std::string_view text, StringPool* pool);

  bool is_null(size_t i) const {
    return (nulls_[i >> 6] >> (i & 63)) & 1;
  }

  int64_t int_at(size_t i) const { return ints_[i]; }
  double double_at(size_t i) const { return doubles_[i]; }
  /// Interning id of the string cell (StringPool::kNpos for NULL).
  uint32_t str_id(size_t i) const { return strs_[i]; }
  std::string_view str_at(size_t i, const StringPool& pool) const {
    return pool.view(strs_[i]);
  }

  /// The cell as a Value; strings come back as cheap non-owning interned
  /// references into `pool` (valid while the pool lives).
  Value value_at(size_t i, const StringPool& pool) const {
    if (is_null(i)) return Value::Null();
    switch (type_) {
      case ValueType::kInt:
        return Value(ints_[i]);
      case ValueType::kDouble:
        return Value(doubles_[i]);
      case ValueType::kString:
        return Value::Interned(pool.view(strs_[i]), strs_[i]);
      case ValueType::kNull:
        break;
    }
    return Value::Null();
  }

  /// Equality-preserving 64-bit code of a non-NULL cell: within one column
  /// type, code equality <=> Value equality (doubles are stored -0.0
  /// canonicalized; NaN cells are the one exception and are excluded by the
  /// consumers — the index build skips them, mirroring NaN != NaN).
  /// Strings map to their interning id, which is what makes cross-column
  /// equality joins an id == id comparison.
  uint64_t code_at(size_t i) const {
    assert(!is_null(i));
    switch (type_) {
      case ValueType::kInt:
        return static_cast<uint64_t>(ints_[i]);
      case ValueType::kDouble: {
        uint64_t bits;
        __builtin_memcpy(&bits, &doubles_[i], sizeof(bits));
        return bits;
      }
      case ValueType::kString:
        return strs_[i];
      case ValueType::kNull:
        break;
    }
    return 0;
  }

  /// Raw slices for columnar scans.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint32_t>& str_ids() const { return strs_; }
  const std::vector<uint64_t>& null_words() const { return nulls_; }

  /// Heap bytes held by this column (excludes the shared pool arena).
  size_t ByteSize() const;

  /// Number of capacity-doubling reallocations Append has triggered; exact
  /// Reserve calls in the generators keep this at 0.
  uint64_t grow_events() const { return grow_events_; }

 private:
  void AppendNullBit(bool is_null);

  ValueType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> strs_;
  std::vector<uint64_t> nulls_;  // bitmap, bit set = NULL
  size_t size_ = 0;
  uint64_t grow_events_ = 0;
};

}  // namespace dcer

#endif  // DCER_RELATIONAL_COLUMN_H_
