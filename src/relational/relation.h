#ifndef DCER_RELATIONAL_RELATION_H_
#define DCER_RELATIONAL_RELATION_H_

#include <cstdint>
#include <vector>

#include "relational/schema.h"

namespace dcer {

/// A tuple is a row of typed values; its arity matches its schema.
using Row = std::vector<Value>;

/// Global tuple id: dense index across all relations of a Dataset. The
/// paper's `t.id` predicates and the match set Γ operate on these.
using Gid = uint32_t;
inline constexpr Gid kInvalidGid = static_cast<Gid>(-1);

/// An instance of a relation schema. Rows carry their global ids so that
/// fragments produced by partitioning can refer back to the original tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  const Row& row(size_t i) const { return rows_[i]; }
  Gid gid(size_t i) const { return gids_[i]; }
  const std::vector<Gid>& gids() const { return gids_; }

  const Value& at(size_t row, size_t attr) const { return rows_[row][attr]; }

  /// Appends a row; the caller (normally Dataset) supplies the global id.
  /// Returns the local row index.
  size_t Append(Row row, Gid gid);

  /// Reserves storage for n more rows.
  void Reserve(size_t n) {
    rows_.reserve(rows_.size() + n);
    gids_.reserve(gids_.size() + n);
  }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<Gid> gids_;
};

}  // namespace dcer

#endif  // DCER_RELATIONAL_RELATION_H_
