#ifndef DCER_RELATIONAL_RELATION_H_
#define DCER_RELATIONAL_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/schema.h"
#include "relational/string_pool.h"

namespace dcer {

/// A tuple as a materialized row of typed values; its arity matches its
/// schema. Relations store columns, not Rows — Row remains the exchange
/// format for appends and for consumers that want a materialized tuple.
using Row = std::vector<Value>;

/// Global tuple id: dense index across all relations of a Dataset. The
/// paper's `t.id` predicates and the match set Γ operate on these.
using Gid = uint32_t;
inline constexpr Gid kInvalidGid = static_cast<Gid>(-1);

class Relation;

/// A cheap non-owning view of one row of a columnar Relation — the migration
/// seam that keeps the historical row(i)/tuple(gid) API working. Cells are
/// materialized on access (strings come back as non-owning interned Values).
/// Valid while the relation lives and no further rows are appended.
class RowView {
 public:
  RowView() = default;
  RowView(const Relation* rel, size_t row) : rel_(rel), row_(row) {}

  size_t size() const;
  Value operator[](size_t attr) const;

  /// Materializes the row (used where a real container is needed, e.g.
  /// re-appending a tuple elsewhere).
  Row ToRow() const;
  operator Row() const { return ToRow(); }

  /// Content equality, matching the old Row == Row semantics.
  bool operator==(const RowView& other) const;
  bool operator!=(const RowView& other) const { return !(*this == other); }
  bool operator==(const Row& other) const;
  bool operator!=(const Row& other) const { return !(*this == other); }

  /// Minimal forward iteration so range-for over a row keeps working.
  class Iterator {
   public:
    Iterator(const RowView* view, size_t i) : view_(view), i_(i) {}
    Value operator*() const { return (*view_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return i_ != other.i_; }

   private:
    const RowView* view_;
    size_t i_;
  };
  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  const Relation* rel_ = nullptr;
  size_t row_ = 0;
};

inline bool operator==(const Row& a, const RowView& b) { return b == a; }
inline bool operator!=(const Row& a, const RowView& b) { return b != a; }

/// An instance of a relation schema, stored columnar: one typed Column per
/// attribute (ints/doubles flat, strings as 32-bit ids into the dataset's
/// interning pool) plus the per-row global ids, so that fragments produced
/// by partitioning can refer back to the original tuples.
class Relation {
 public:
  Relation() = default;
  /// Standalone relation owning a private interning pool (tests, ad-hoc
  /// use). Relations inside a Dataset share the dataset's pool instead.
  explicit Relation(Schema schema)
      : Relation(std::move(schema), nullptr) {}
  Relation(Schema schema, StringPool* shared_pool);

  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return gids_.size(); }
  bool empty() const { return gids_.empty(); }

  RowView row(size_t i) const { return RowView(this, i); }
  Gid gid(size_t i) const { return gids_[i]; }
  const std::vector<Gid>& gids() const { return gids_; }

  /// The cell (row, attr) as a Value — by value; string cells are cheap
  /// non-owning references into the pool. `const Value& v = rel.at(...)`
  /// keeps working via lifetime extension.
  Value at(size_t row, size_t attr) const {
    return cols_[attr].value_at(row, *pool_);
  }

  bool is_null(size_t row, size_t attr) const {
    return cols_[attr].is_null(row);
  }
  /// Characters of a non-NULL string cell, viewed in the arena (zero-copy;
  /// this is what the similarity kernels consume).
  std::string_view string_at(size_t row, size_t attr) const {
    return cols_[attr].str_at(row, *pool_);
  }
  /// Equality-preserving code of a non-NULL cell (see Column::code_at).
  uint64_t code_at(size_t row, size_t attr) const {
    return cols_[attr].code_at(row);
  }

  size_t num_columns() const { return cols_.size(); }
  const Column& column(size_t attr) const { return cols_[attr]; }

  const StringPool& pool() const { return *pool_; }
  StringPool* mutable_pool() { return pool_; }

  /// Appends a row; the caller (normally Dataset) supplies the global id.
  /// Returns the local row index.
  size_t Append(Row row, Gid gid);

  /// Column-streaming append from CSV fields: `attr_to_field[a]` is the
  /// field index holding attribute a, or -1 for NULL. Returns the row index.
  size_t AppendParsed(const std::vector<std::string>& fields,
                      const std::vector<int>& attr_to_field, Gid gid);

  /// Reserves storage for n more rows (per column).
  void Reserve(size_t n);

  /// Heap bytes held by the columns (excludes the shared pool).
  size_t ByteSize() const;

  /// Total column reallocations triggered by appends (0 when generators
  /// Reserve exactly).
  uint64_t grow_events() const;

 private:
  Schema schema_;
  std::vector<Column> cols_;
  std::vector<Gid> gids_;
  StringPool* pool_ = nullptr;
  std::unique_ptr<StringPool> own_pool_;  // set iff standalone
};

inline size_t RowView::size() const { return rel_->schema().num_attrs(); }

inline Value RowView::operator[](size_t attr) const {
  return rel_->at(row_, attr);
}

}  // namespace dcer

#endif  // DCER_RELATIONAL_RELATION_H_
