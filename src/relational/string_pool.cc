#include "relational/string_pool.h"

#include <cassert>
#include <cstring>

namespace dcer {

namespace {
constexpr size_t kMinChunk = 64 * 1024;  // chars per arena chunk
}

const char* StringPool::ArenaAppend(std::string_view s) {
  // chunks_.empty() matters when the first interned string is "": it needs a
  // chunk for its (zero-length) stable pointer without growing the arena.
  if (chunks_.empty() || chunk_used_ + s.size() > chunk_cap_) {
    chunk_cap_ = s.size() > kMinChunk ? s.size() : kMinChunk;
    chunks_.push_back(std::make_unique<char[]>(chunk_cap_));
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  if (!s.empty()) std::memcpy(dst, s.data(), s.size());
  chunk_used_ += s.size();
  arena_bytes_.fetch_add(s.size(), std::memory_order_relaxed);
  return dst;
}

uint32_t StringPool::Intern(std::string_view s) {
  std::unique_lock lock(mu_);
  ++requests_;
  requested_bytes_ += s.size();
  auto it = map_.find(s);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  const size_t id = size_.load(std::memory_order_relaxed);
  assert(id < static_cast<size_t>(kNpos));

  const char* data = ArenaAppend(s);
  const uint32_t u = (static_cast<uint32_t>(id) >> kFirstBlockLog2) + 1;
  const uint32_t block = 31 - static_cast<uint32_t>(__builtin_clz(u));
  assert(block < kMaxBlocks);
  const uint32_t offset =
      static_cast<uint32_t>(id) - ((1u << block) - 1) * kFirstBlock;
  Entry* entries = blocks_[block].load(std::memory_order_relaxed);
  if (entries == nullptr) {
    block_storage_.push_back(std::make_unique<Entry[]>(
        static_cast<size_t>(kFirstBlock) << block));
    entries = block_storage_.back().get();
    blocks_[block].store(entries, std::memory_order_release);
  }
  entries[offset] = Entry{data, static_cast<uint32_t>(s.size())};
  map_.emplace(std::string_view(data, s.size()), static_cast<uint32_t>(id));
  // Publish: the release store pairs with the acquire load in size()/entry(),
  // making the entry (and its arena bytes) visible before the id is.
  size_.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

uint32_t StringPool::Find(std::string_view s) const {
  std::shared_lock lock(mu_);
  auto it = map_.find(s);
  return it == map_.end() ? kNpos : it->second;
}

size_t StringPool::ByteSize() const {
  std::shared_lock lock(mu_);
  size_t bytes = arena_bytes_.load(std::memory_order_relaxed);
  bytes += block_storage_.size() == 0
               ? 0
               : size_.load(std::memory_order_relaxed) * sizeof(Entry);
  // Rough dedup-map cost: bucket pointer + node (view + id + next pointer).
  bytes += map_.bucket_count() * sizeof(void*);
  bytes += map_.size() * (sizeof(std::string_view) + sizeof(uint32_t) +
                          2 * sizeof(void*));
  return bytes;
}

}  // namespace dcer
