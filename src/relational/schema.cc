#include "relational/schema.h"

namespace dcer {

int Schema::AttrIndex(std::string_view attr_name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == attr_name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ":";
    out += ValueTypeName(attrs_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace dcer
